package service

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/sched"
)

// This file is the session face of the service: long-lived, mutable
// solver state behind opaque ids. A stateless request (service.go) ships
// its whole instance every time; a session is created once from an
// InstanceSpec, then mutated incrementally (MutationSpec) and re-solved.
// Under the hood each session owns a sched.Session, so re-solves after
// small mutations are warm-started instead of computed from scratch.
//
// Sessions share the service's digest result cache with the stateless
// path: a solve is keyed by the digest of the session's *current*
// instance spec, recomputed on every mutation. Mutating a session
// therefore can never serve a stale cached schedule (the digest moved),
// while two sessions replaying identical creation + mutation traces hit
// the same cache entries — the interplay the session tests pin down.
//
// Resource controls mirror the stateless path's: the registry is bounded
// by Config.MaxSessions (CreateSession answers ErrTooManySessions / 429
// at the cap), and a draining service refuses session work with
// ErrClosed / 503 across create, mutate, and solve alike. Session solves
// run on the caller's goroutine under the per-session lock — warm
// re-solves are cheap by design — rather than through the worker pool,
// so per-session mutate/solve streams serialize naturally instead of
// queueing.

// ErrNoSession is returned for unknown or dropped session ids.
var ErrNoSession = errors.New("service: no such session")

// ErrTooManySessions is returned by CreateSession at the MaxSessions cap.
var ErrTooManySessions = errors.New("service: session limit reached")

// MutationSpec is one session mutation on the wire. Op selects the
// variant; exactly the fields that variant needs are read:
//
//	{"op": "add_job", "job": {...}}          append a job (value 0 → 1)
//	{"op": "remove_job", "index": 3}         delete job 3 (later jobs shift)
//	{"op": "block", "slot": {"proc":0,"time":5}}  mask a slot unavailable
//	{"op": "advance_horizon", "horizon": 48} grow the horizon
type MutationSpec struct {
	Op      string    `json:"op"`
	Job     *JobSpec  `json:"job,omitempty"`
	Index   int       `json:"index,omitempty"`
	Slot    *SlotSpec `json:"slot,omitempty"`
	Horizon int       `json:"horizon,omitempty"`
}

// sessionHandle is one live session: the solver state plus the canonical
// spec whose digest keys the result cache. The mutex serializes mutations
// and solves (sched.Session is single-threaded by contract).
type sessionHandle struct {
	mu     sync.Mutex
	sess   *sched.Session
	spec   InstanceSpec
	digest string
	opts   sched.Options
}

// CreateSession opens a session from a wire spec and returns its id and
// the digest of its (initial) instance. Sessions solve with ScheduleAll
// semantics: specs selecting a prize mode or the Improve pass are
// rejected. The ProbeWorkers default applies as on the stateless path.
func (s *Service) CreateSession(spec InstanceSpec) (id, digest string, err error) {
	if err := s.sessionsOpen(); err != nil {
		return "", "", err
	}
	if s.cfg.MaxSessions < 0 {
		return "", "", errors.New("service: sessions disabled (MaxSessions < 0)")
	}
	if spec.Mode != "" && spec.Mode != "all" {
		return "", "", fmt.Errorf("service: sessions solve mode \"all\", got %q", spec.Mode)
	}
	if spec.Improve {
		return "", "", errors.New("service: sessions do not support the improve pass")
	}
	req, err := BuildRequest(spec)
	if err != nil {
		return "", "", err
	}
	if req.Opts.Workers == 0 && s.cfg.ProbeWorkers > 0 {
		req.Opts.Workers = s.cfg.ProbeWorkers
	}
	sess, err := sched.NewSession(req.Instance, req.Opts)
	if err != nil {
		return "", "", err
	}
	// Own every slice a mutation appends to: the jobs list and the cost
	// chain's blocked lists. Without the copy, two sessions created from
	// one caller-built spec could share a backing array and a "block"
	// append in one would corrupt the other's spec — and therefore the
	// digest its cached schedules are keyed by.
	spec.Jobs = append([]JobSpec(nil), spec.Jobs...)
	spec.Cost = cloneCostSpec(spec.Cost)
	h := &sessionHandle{
		sess:   sess,
		spec:   spec,
		digest: req.InstanceKey,
		opts:   req.Opts,
	}
	id = fmt.Sprintf("s%06d", s.sessSeq.Add(1))
	s.sessMu.Lock()
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.sessMu.Unlock()
		return "", "", fmt.Errorf("%w: %d live", ErrTooManySessions, s.cfg.MaxSessions)
	}
	s.sessions[id] = h
	s.sessMu.Unlock()
	return id, h.digest, nil
}

// sessionsOpen reports whether the service still accepts session work —
// a draining service refuses mutations and solves too, matching the
// stateless path's 503 contract.
func (s *Service) sessionsOpen() error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	return nil
}

// cloneCostSpec deep-copies the mutable parts of a cost spec (the
// blocked-slot lists down the base chain); scalar fields copy by value.
func cloneCostSpec(c CostSpec) CostSpec {
	c.Blocked = append([]SlotSpec(nil), c.Blocked...)
	if c.Base != nil {
		base := cloneCostSpec(*c.Base)
		c.Base = &base
	}
	return c
}

func (s *Service) session(id string) (*sessionHandle, error) {
	s.sessMu.Lock()
	h, ok := s.sessions[id]
	s.sessMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSession, id)
	}
	return h, nil
}

// MutateSession applies the mutations in order and returns the digest of
// the session's new instance. On error the session reflects the
// successfully applied prefix (and the returned digest matches it) —
// mutations are not transactional.
func (s *Service) MutateSession(id string, muts []MutationSpec) (digest string, err error) {
	if err := s.sessionsOpen(); err != nil {
		return "", err
	}
	h, err := s.session(id)
	if err != nil {
		return "", err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, m := range muts {
		if err := h.apply(m); err != nil {
			h.digest = InstanceDigest(h.spec)
			return h.digest, fmt.Errorf("service: mutation %d (%s): %w", i, m.Op, err)
		}
	}
	h.digest = InstanceDigest(h.spec)
	return h.digest, nil
}

// apply performs one mutation on both the solver session and the
// canonical spec, keeping them describing the same instance.
func (h *sessionHandle) apply(m MutationSpec) error {
	switch m.Op {
	case "add_job":
		if m.Job == nil {
			return errors.New("missing job")
		}
		job := sched.Job{Value: m.Job.Value}
		if job.Value == 0 {
			job.Value = 1 // the BuildRequest default, mirrored
		}
		for _, sl := range m.Job.Allowed {
			job.Allowed = append(job.Allowed, sched.SlotKey{Proc: sl.Proc, Time: sl.Time})
		}
		if _, err := h.sess.AddJob(job); err != nil {
			return err
		}
		h.spec.Jobs = append(h.spec.Jobs, *m.Job)
		return nil
	case "remove_job":
		if err := h.sess.RemoveJob(m.Index); err != nil {
			return err
		}
		h.spec.Jobs = append(h.spec.Jobs[:m.Index:m.Index], h.spec.Jobs[m.Index+1:]...)
		return nil
	case "block":
		if m.Slot == nil {
			return errors.New("missing slot")
		}
		if err := h.sess.SetUnavailable(m.Slot.Proc, m.Slot.Time); err != nil {
			return err
		}
		if h.spec.Cost.Model == "unavailable" {
			h.spec.Cost.Blocked = append(h.spec.Cost.Blocked, *m.Slot)
		} else {
			base := h.spec.Cost
			h.spec.Cost = CostSpec{Model: "unavailable", Base: &base, Blocked: []SlotSpec{*m.Slot}}
		}
		return nil
	case "advance_horizon":
		if err := h.sess.AdvanceHorizon(m.Horizon); err != nil {
			return err
		}
		h.spec.Horizon = m.Horizon
		return nil
	default:
		return fmt.Errorf("unknown op %q", m.Op)
	}
}

// SolveSession solves the session's current instance. Identical content
// (same digest, same options) is answered from the shared result cache —
// stateless requests for the same instance share the entries — and a
// mutated session always re-solves, because its digest moved with the
// mutation. Cache misses are solved warm on the session and cached.
func (s *Service) SolveSession(id string) Result {
	if err := s.sessionsOpen(); err != nil {
		return Result{Err: err}
	}
	h, err := s.session(id)
	if err != nil {
		return Result{Err: err}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s.submitted.Add(1)
	key := cacheKey(Request{InstanceKey: h.digest, Mode: ModeAll, Opts: h.opts})
	if hit, ok := s.cacheGet(key); ok {
		s.completed.Add(1)
		s.cacheHits.Add(1)
		return Result{Schedule: hit, CacheHit: true}
	}
	out, err := h.sess.Solve()
	s.completed.Add(1)
	if err != nil {
		s.errs.Add(1)
		return Result{Err: err}
	}
	s.cacheMisses.Add(1)
	s.cachePut(key, out)
	return Result{Schedule: out}
}

// SessionInfo is a point-in-time snapshot of one session.
type SessionInfo struct {
	ID      string `json:"id"`
	Digest  string `json:"digest"`
	Jobs    int    `json:"jobs"`
	Horizon int    `json:"horizon"`
	Solves  int    `json:"solves"`
	Warm    int    `json:"warm_solves"`
	Evals   int64  `json:"evals"`
}

// SessionInfo reports a session's current shape and solve accounting.
func (s *Service) SessionInfo(id string) (SessionInfo, error) {
	h, err := s.session(id)
	if err != nil {
		return SessionInfo{}, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	solves, warm, _ := h.sess.Stats()
	return SessionInfo{
		ID:      id,
		Digest:  h.digest,
		Jobs:    h.sess.Jobs(),
		Horizon: h.sess.Horizon(),
		Solves:  solves,
		Warm:    warm,
		Evals:   h.sess.TotalEvals(),
	}, nil
}

// DropSession discards a session. Cached results survive: they are keyed
// by content digest, not by session.
func (s *Service) DropSession(id string) error {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if _, ok := s.sessions[id]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSession, id)
	}
	delete(s.sessions, id)
	return nil
}
