package submodular

import (
	"math/rand"
	"testing"
)

// deltaOracleOf builds the incremental oracle for tc and asserts it
// exposes the delta-replay surface.
func deltaOracleOf(t *testing.T, tc incrementalCase) DeltaOracle {
	t.Helper()
	inc, ok := AsIncremental(tc.f)
	if !ok {
		t.Fatalf("%s: no incremental oracle", tc.name)
	}
	d, ok := AsDeltaOracle(inc)
	if !ok {
		t.Fatalf("%s: no delta oracle", tc.name)
	}
	return d
}

// TestDeltaReplayMatchesCommit is the determinism backbone of per-round
// delta replay: a deep-clone replica that applies the primary's deltas
// must be bit-identical (exact float equality, not epsilon) to the
// primary after every batch — the same guarantee Commit replay gave the
// parallel greedy.
func TestDeltaReplayMatchesCommit(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*31337 + 7))
		for _, tc := range randomCases(rng) {
			primary := deltaOracleOf(t, tc)
			replica, ok := primary.Clone().(DeltaOracle)
			if !ok {
				t.Fatalf("%s: Clone dropped the delta surface", tc.name)
			}
			n := tc.f.Universe()
			for step := 0; step < 8; step++ {
				items := randomItems(rng, n)
				d, gain := primary.CommitDelta(items)
				if d.DeltaEpoch() != primary.Epoch() {
					t.Fatalf("%s trial %d step %d: delta epoch %d, primary epoch %d",
						tc.name, trial, step, d.DeltaEpoch(), primary.Epoch())
				}
				wantGain := replica.Gain(items)
				if gain != wantGain {
					t.Fatalf("%s trial %d step %d: CommitDelta gain %g != replica probe %g",
						tc.name, trial, step, gain, wantGain)
				}
				if err := replica.ApplyDelta(d); err != nil {
					t.Fatalf("%s trial %d step %d: ApplyDelta: %v", tc.name, trial, step, err)
				}
				if replica.Epoch() != primary.Epoch() {
					t.Fatalf("%s trial %d step %d: epochs diverged %d vs %d",
						tc.name, trial, step, replica.Epoch(), primary.Epoch())
				}
				if !replica.Base().Equal(primary.Base()) {
					t.Fatalf("%s trial %d step %d: bases diverged after delta replay", tc.name, trial, step)
				}
				if replica.Value() != primary.Value() {
					t.Fatalf("%s trial %d step %d: values diverged %v vs %v (must be bit-identical)",
						tc.name, trial, step, replica.Value(), primary.Value())
				}
				probe := randomItems(rng, n)
				if g1, g2 := primary.Gain(probe), replica.Gain(probe); g1 != g2 {
					t.Fatalf("%s trial %d step %d: probe diverged %v vs %v", tc.name, trial, step, g1, g2)
				}
			}
		}
	}
}

// TestDeltaEquivalentToCommit checks that CommitDelta commits exactly
// like Commit: a sibling clone that uses plain Commit on the same batches
// tracks the CommitDelta primary bit-for-bit.
func TestDeltaEquivalentToCommit(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*7919 + 3))
		for _, tc := range randomCases(rng) {
			primary := deltaOracleOf(t, tc)
			committer := primary.Clone()
			n := tc.f.Universe()
			for step := 0; step < 8; step++ {
				items := randomItems(rng, n)
				_, dg := primary.CommitDelta(items)
				cg := committer.Commit(items)
				if dg != cg {
					t.Fatalf("%s trial %d step %d: CommitDelta gain %v != Commit gain %v",
						tc.name, trial, step, dg, cg)
				}
				if primary.Value() != committer.Value() || !primary.Base().Equal(committer.Base()) {
					t.Fatalf("%s trial %d step %d: CommitDelta state diverged from Commit", tc.name, trial, step)
				}
			}
		}
	}
}

// TestCOWReplicaSharesCommittedState checks the copy-on-write contract:
// a Replica() view observes the primary's commits through the shared
// epoch pointer, and ApplyDelta on it degenerates to an epoch-check
// no-op instead of double-applying.
func TestCOWReplicaSharesCommittedState(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range randomCases(rng) {
		inc, _ := AsIncremental(tc.f)
		rp, ok := inc.(ReplicaProvider)
		if !ok {
			continue // only the large-state oracles are copy-on-write
		}
		primary, _ := AsDeltaOracle(inc)
		replica, ok := rp.Replica().(DeltaOracle)
		if !ok {
			t.Fatalf("%s: Replica dropped the delta surface", tc.name)
		}
		n := tc.f.Universe()
		for step := 0; step < 6; step++ {
			items := randomItems(rng, n)
			d, _ := primary.CommitDelta(items)
			// The shared state already advanced: the replica sees it
			// before any ApplyDelta.
			if replica.Epoch() != primary.Epoch() || replica.Value() != primary.Value() {
				t.Fatalf("%s step %d: COW replica did not observe the primary's commit", tc.name, step)
			}
			if err := replica.ApplyDelta(d); err != nil {
				t.Fatalf("%s step %d: ApplyDelta on COW replica: %v", tc.name, step, err)
			}
			if replica.Value() != primary.Value() || !replica.Base().Equal(primary.Base()) {
				t.Fatalf("%s step %d: ApplyDelta double-applied on shared state", tc.name, step)
			}
			probe := randomItems(rng, n)
			if g1, g2 := primary.Gain(probe), replica.Gain(probe); g1 != g2 {
				t.Fatalf("%s step %d: COW probe diverged %v vs %v", tc.name, step, g1, g2)
			}
		}
	}
}

// TestApplyDeltaEpochErrors checks that the epoch protocol rejects skipped
// and foreign deltas instead of silently corrupting a replica.
func TestApplyDeltaEpochErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range randomCases(rng) {
		primary := deltaOracleOf(t, tc)
		replica := primary.Clone().(DeltaOracle)
		n := tc.f.Universe()

		// Two commits on the primary without syncing: the second delta is
		// two epochs ahead of the replica.
		primary.CommitDelta(randomItems(rng, n))
		d2, _ := primary.CommitDelta(randomItems(rng, n))
		if err := replica.ApplyDelta(d2); err == nil {
			t.Fatalf("%s: skipped-epoch delta applied without error", tc.name)
		}
		if replica.Epoch() != 0 {
			t.Fatalf("%s: failed ApplyDelta moved the epoch", tc.name)
		}

		// A delta from a different oracle type must be rejected.
		var foreign Delta = fakeDelta{epoch: replica.Epoch() + 1}
		if err := replica.ApplyDelta(foreign); err == nil {
			t.Fatalf("%s: foreign delta type applied without error", tc.name)
		}
	}
}

type fakeDelta struct{ epoch uint64 }

func (d fakeDelta) DeltaEpoch() uint64 { return d.epoch }

// TestNewProbeReplica checks replica selection: copy-on-write views for
// oracles that provide them, deep clones otherwise, and counting wrappers
// that keep billing the shared counter.
func TestNewProbeReplica(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, tc := range randomCases(rng) {
		inc, _ := AsIncremental(tc.f)
		replica := NewProbeReplica(inc)
		if !replica.Base().Equal(inc.Base()) || replica.Value() != inc.Value() {
			t.Fatalf("%s: probe replica does not match primary", tc.name)
		}
		switch p := inc.(type) {
		case *IncCoverage:
			if p.st != replica.(*IncCoverage).st {
				t.Fatalf("%s: expected copy-on-write shared state", tc.name)
			}
			if p.scratch == replica.(*IncCoverage).scratch {
				t.Fatalf("%s: probe scratch must be replica-private", tc.name)
			}
		case *IncFacilityLocation:
			if p.st != replica.(*IncFacilityLocation).st {
				t.Fatalf("%s: expected copy-on-write shared state", tc.name)
			}
		default:
			// Deep clone: commits to the replica must not move the primary.
			before := inc.Value()
			replica.Commit(randomItems(rng, tc.f.Universe()))
			if inc.Value() != before {
				t.Fatalf("%s: deep-clone replica shares state with primary", tc.name)
			}
		}
	}

	// Counting wrappers unwrap and keep charging the shared counter.
	counting := NewCounting(randomCases(rng)[0].f)
	inc, _ := AsIncremental(counting)
	replica := NewProbeReplica(inc)
	if _, ok := replica.(*countingIncremental); !ok {
		t.Fatalf("probe replica of counting oracle lost its counting wrapper")
	}
	before := counting.Calls()
	replica.Gain([]int{0})
	if counting.Calls() != before+1 {
		t.Fatalf("probe replica does not bill the shared counter")
	}
	if _, ok := AsDeltaOracle(inc); !ok {
		t.Fatalf("AsDeltaOracle failed to unwrap the counting wrapper")
	}
}

// TestDeltaPathAllocFree pins the per-round hot path: once the reusable
// delta buffer exists, CommitDelta on the primary and ApplyDelta on a
// replica allocate nothing.
func TestDeltaPathAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tc := range randomCases(rng) {
		primary := deltaOracleOf(t, tc)
		replica := primary.Clone().(DeltaOracle)
		n := tc.f.Universe()

		// Warm the delta buffer with a first, larger batch.
		items := randomItems(rng, n)
		for len(items) < 3 {
			items = append(items, rng.Intn(n))
		}
		d, _ := primary.CommitDelta(items)
		if err := replica.ApplyDelta(d); err != nil {
			t.Fatalf("%s: warmup ApplyDelta: %v", tc.name, err)
		}

		batch := []int{rng.Intn(n)}
		var dd Delta
		if allocs := testing.AllocsPerRun(20, func() {
			dd, _ = primary.CommitDelta(batch)
			if err := replica.ApplyDelta(dd); err != nil {
				t.Fatalf("%s: ApplyDelta: %v", tc.name, err)
			}
		}); allocs != 0 {
			t.Fatalf("%s: delta round allocates %v times, want 0", tc.name, allocs)
		}
	}
}

// TestDeltaDoesNotAliasProbeScratch reconstructs the shared-mutable-delta
// aliasing bug the deltashare analyzer guards against: after CommitDelta,
// probes on the primary overwrite its scratch — a delta aliasing that
// scratch would corrupt replicas applying it afterwards.
func TestDeltaDoesNotAliasProbeScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, tc := range randomCases(rng) {
		primary := deltaOracleOf(t, tc)
		replica := primary.Clone().(DeltaOracle)
		n := tc.f.Universe()

		items := randomItems(rng, n)
		d, _ := primary.CommitDelta(items)
		// Probe storm on the primary between CommitDelta and the replica's
		// ApplyDelta — exactly the interleaving of the parallel greedy,
		// where worker 0 probes while workers 1..W-1 apply the delta.
		for i := 0; i < 8; i++ {
			primary.Gain(randomItems(rng, n))
		}
		if err := replica.ApplyDelta(d); err != nil {
			t.Fatalf("%s: ApplyDelta: %v", tc.name, err)
		}
		if replica.Value() != primary.Value() || !replica.Base().Equal(primary.Base()) {
			t.Fatalf("%s: delta corrupted by subsequent probes (aliases probe scratch?)", tc.name)
		}
	}
}

// TestResetZeroesEpoch checks Reset returns the lineage to epoch zero so
// a fresh run's deltas line up again.
func TestResetZeroesEpoch(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, tc := range randomCases(rng) {
		primary := deltaOracleOf(t, tc)
		primary.CommitDelta(randomItems(rng, tc.f.Universe()))
		if primary.Epoch() == 0 {
			t.Fatalf("%s: CommitDelta did not advance the epoch", tc.name)
		}
		primary.Reset()
		if primary.Epoch() != 0 {
			t.Fatalf("%s: Reset left epoch at %d", tc.name, primary.Epoch())
		}
		if !primary.Base().Empty() {
			t.Fatalf("%s: Reset left a non-empty base", tc.name)
		}
	}
}

// TestCloneDoesNotShareDeltaBuffer checks that clones leave the reusable
// delta buffer behind: a clone's CommitDelta must not invalidate a delta
// the original handed out.
func TestCloneDoesNotShareDeltaBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, tc := range randomCases(rng) {
		primary := deltaOracleOf(t, tc)
		sibling := primary.Clone().(DeltaOracle)
		replica := primary.Clone().(DeltaOracle)
		n := tc.f.Universe()

		items := randomItems(rng, n)
		d, _ := primary.CommitDelta(items)
		// The sibling commits something else; with a shared buffer this
		// would clobber d before the replica applies it.
		sibling.CommitDelta(randomItems(rng, n))
		if err := replica.ApplyDelta(d); err != nil {
			t.Fatalf("%s: ApplyDelta: %v", tc.name, err)
		}
		if replica.Value() != primary.Value() || !replica.Base().Equal(primary.Base()) {
			t.Fatalf("%s: clone shares the delta buffer with its original", tc.name)
		}
	}
}
