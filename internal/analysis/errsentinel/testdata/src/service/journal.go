// Fixture: a durability-layer file (journal*) of the service package.
// Ad-hoc errors must be flagged; sentinel declarations and %w-wrapped
// chains must not.
package service

import (
	"errors"
	"fmt"
)

// Package-level sentinel declarations are the sanctioned use of
// errors.New — this is how the contract's sentinels come to exist.
var (
	ErrDurability      = errors.New("service: durable storage failure")
	ErrSnapshotCorrupt = errors.New("service: snapshot corrupt")
)

// badNew mints an untyped error on the durability path: the HTTP layer
// cannot errors.Is it to a 503.
func badNew() error {
	return errors.New("journal went sideways") // want `naked errors\.New on a contract path`
}

// badErrorf drops the chain: no %w, so sentinel matching severs here.
func badErrorf(rec int) error {
	return fmt.Errorf("journal: record %d broken", rec) // want `fmt\.Errorf without %w`
}

// badErrorfConcat hides the missing %w behind a literal concatenation.
func badErrorfConcat(rec int) error {
	return fmt.Errorf("journal: "+"record %d broken", rec) // want `fmt\.Errorf without %w`
}

// good wraps a sentinel, keeping errors.Is dispatch alive end to end.
func good(rec int, err error) error {
	if err != nil {
		return fmt.Errorf("%w: record %d: %v", ErrSnapshotCorrupt, rec, err)
	}
	return fmt.Errorf("%w: flush", ErrDurability)
}

// goodReturnSentinel returns the sentinel itself — nothing constructed.
func goodReturnSentinel() error { return ErrDurability }
