package cluster

import (
	"fmt"
	"testing"
)

// FuzzHashRing asserts the ring's structural theorems on fuzzer-chosen
// backend sets, key sets, and resize operations:
//
//  1. The ring is a pure function of the backend set: rebuilding from a
//     rotated input order changes no lookup.
//  2. Lookup is monotone under resize: growing moves keys only to the
//     new backend; shrinking moves only the removed backend's keys.
//  3. Failover equals resize: LookupAlive skipping a dead backend gives
//     the same owner as Lookup on the ring without it.
//  4. Assign is balanced: no backend owns more than ⌈K/N⌉ keys.
//  5. Rebalance after a one-backend resize moves at most ⌈K/N⌉
//     previously-owned keys, N the ring being rebalanced onto.
//
// These are theorems of the construction, not statistical properties,
// so any counterexample the fuzzer finds is a real bug.
func FuzzHashRing(f *testing.F) {
	f.Add([]byte("seed"), uint8(3), uint16(10), uint8(0))
	f.Add([]byte(""), uint8(1), uint16(0), uint8(7))
	f.Add([]byte("\x00\xff"), uint8(8), uint16(257), uint8(3))
	f.Add([]byte("powersched"), uint8(5), uint16(100), uint8(2))
	f.Fuzz(func(t *testing.T, seed []byte, nb uint8, kc uint16, pick uint8) {
		N := int(nb%8) + 1
		K := int(kc % 300)
		backends := make([]string, N)
		for i := range backends {
			backends[i] = fmt.Sprintf("b%d-%x", i, seed)
		}
		keys := make([]string, K)
		for i := range keys {
			keys[i] = fmt.Sprintf("k%d-%x", i, seed)
		}

		ring, err := NewRing(backends)
		if err != nil {
			t.Fatal(err)
		}

		// 1. Pure function of the set.
		rot := int(pick) % N
		rotated := append(append([]string(nil), backends[rot:]...), backends[:rot]...)
		ring2, err := NewRing(rotated)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if ring.Lookup(k) != ring2.Lookup(k) {
				t.Fatalf("lookup of %q differs across insertion orders", k)
			}
		}

		// 4. Assign balance + determinism under key rotation.
		prev := ring.Assign(keys)
		if K > 0 {
			krot := int(pick) % K
			rotKeys := append(append([]string(nil), keys[krot:]...), keys[:krot]...)
			again := ring.Assign(rotKeys)
			loads := map[string]int{}
			for k, b := range prev {
				if again[k] != b {
					t.Fatalf("assignment of %q differs across input orders", k)
				}
				loads[b]++
			}
			cap := (K + N - 1) / N
			for b, l := range loads {
				if l > cap {
					t.Fatalf("backend %q owns %d keys, cap %d", b, l, cap)
				}
			}
		}

		// Grow by one backend.
		grown := append(append([]string(nil), backends...), fmt.Sprintf("bnew-%x", seed))
		bigRing, err := NewRing(grown)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			was, now := ring.Lookup(k), bigRing.Lookup(k)
			if now != was && now != grown[N] {
				t.Fatalf("grow moved %q from %q to %q, not the new backend", k, was, now)
			}
		}
		next := bigRing.Rebalance(prev, keys)
		bound := (K + N) / (N + 1) // ⌈K/(N+1)⌉
		if m := movedCount(prev, next); m > bound {
			t.Fatalf("grow rebalance moved %d keys, bound %d (K=%d N=%d)", m, bound, K, N+1)
		}

		// Shrink by one backend (needs N >= 2).
		if N >= 2 {
			dead := int(pick) % N
			var rest []string
			for i, b := range backends {
				if i != dead {
					rest = append(rest, b)
				}
			}
			smallRing, err := NewRing(rest)
			if err != nil {
				t.Fatal(err)
			}
			alive := func(b string) bool { return b != backends[dead] }
			for _, k := range keys {
				// 2. Shrink moves only the removed backend's keys.
				was := ring.Lookup(k)
				now := smallRing.Lookup(k)
				if was != backends[dead] && now != was {
					t.Fatalf("shrink moved %q from surviving %q to %q", k, was, now)
				}
				// 3. Failover = resize.
				fo, ok := ring.LookupAlive(k, alive)
				if !ok || fo != now {
					t.Fatalf("failover owner %q != shrunk-ring owner %q for %q", fo, now, k)
				}
			}
			next := smallRing.Rebalance(prev, keys)
			bound := (K + N - 2) / (N - 1) // ⌈K/(N-1)⌉
			if m := movedCount(prev, next); m > bound {
				t.Fatalf("shrink rebalance moved %d keys, bound %d (K=%d N=%d)", m, bound, K, N-1)
			}
			for k, b := range next {
				if b == backends[dead] {
					t.Fatalf("key %q still assigned to removed backend", k)
				}
			}
		}
	})
}

func movedCount(prev, next map[string]string) int {
	n := 0
	for k, b := range prev {
		if nb, ok := next[k]; ok && nb != b {
			n++
		}
	}
	return n
}
