package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if !s.Empty() {
		t.Fatal("new set should be empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 129} {
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("Contains(%d) = false after Add", i)
		}
	}
	if got := s.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Contains(64) after Remove")
	}
	if got := s.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	want := []int{0, 1, 63, 65, 129}
	got := s.Elements()
	if len(got) != len(want) {
		t.Fatalf("Elements = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elements = %v, want %v", got, want)
		}
	}
}

func TestAddIdempotent(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(3)
	if s.Count() != 1 {
		t.Fatalf("Count = %d after duplicate Add, want 1", s.Count())
	}
	s.Remove(7) // removing absent element is a no-op
	if s.Count() != 1 {
		t.Fatalf("Count = %d after removing absent element, want 1", s.Count())
	}
}

func TestFull(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 200} {
		f := Full(n)
		if f.Count() != n {
			t.Fatalf("Full(%d).Count = %d", n, f.Count())
		}
		// No stray bits beyond the universe: union with empty keeps count.
		e := New(n)
		e.UnionWith(f)
		if e.Count() != n {
			t.Fatalf("Full(%d) has stray bits", n)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range Add")
		}
	}()
	New(5).Add(5)
}

func TestUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on universe mismatch")
		}
	}()
	New(5).UnionWith(New(6))
}

func TestSetAlgebra(t *testing.T) {
	a := FromSlice(100, []int{1, 5, 70, 99})
	b := FromSlice(100, []int{5, 6, 70})
	if got := Union(a, b).Elements(); len(got) != 5 {
		t.Fatalf("Union = %v", got)
	}
	if got := Intersect(a, b).Elements(); len(got) != 2 || got[0] != 5 || got[1] != 70 {
		t.Fatalf("Intersect = %v", got)
	}
	if got := Subtract(a, b).Elements(); len(got) != 2 || got[0] != 1 || got[1] != 99 {
		t.Fatalf("Subtract = %v", got)
	}
	if a.IntersectionCount(b) != 2 {
		t.Fatalf("IntersectionCount = %d", a.IntersectionCount(b))
	}
	if a.UnionCount(b) != 5 {
		t.Fatalf("UnionCount = %d", a.UnionCount(b))
	}
	if !a.Intersects(b) {
		t.Fatal("Intersects = false")
	}
	if !Intersect(a, b).SubsetOf(a) || !Intersect(a, b).SubsetOf(b) {
		t.Fatal("intersection not subset of operands")
	}
}

func TestNext(t *testing.T) {
	s := FromSlice(200, []int{3, 64, 130})
	cases := []struct{ from, want int }{
		{0, 3}, {3, 3}, {4, 64}, {64, 64}, {65, 130}, {131, -1}, {-5, 3},
	}
	for _, c := range cases {
		if got := s.Next(c.from); got != c.want {
			t.Errorf("Next(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := s.Next(500); got != -1 {
		t.Errorf("Next beyond universe = %d, want -1", got)
	}
}

func TestString(t *testing.T) {
	if got := FromSlice(10, []int{1, 2}).String(); got != "{1, 2}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Fatalf("String = %q", got)
	}
}

// mapSet is the reference implementation for property tests.
type mapSet map[int]bool

func randomPair(rng *rand.Rand, n int) (*Set, mapSet) {
	s := New(n)
	m := mapSet{}
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			s.Add(i)
			m[i] = true
		}
	}
	return s, m
}

// TestQuickAgainstMapReference drives random op sequences against a
// map-based reference model.
func TestQuickAgainstMapReference(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(150)
		s, m := randomPair(rng, n)
		for step := 0; step < 100; step++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				s.Add(i)
				m[i] = true
			case 1:
				s.Remove(i)
				delete(m, i)
			case 2:
				if s.Contains(i) != m[i] {
					return false
				}
			}
		}
		if s.Count() != len(m) {
			return false
		}
		for _, e := range s.Elements() {
			if !m[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAlgebraLaws verifies De Morgan-ish laws against the reference.
func TestQuickAlgebraLaws(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		a, _ := randomPair(rng, n)
		b, _ := randomPair(rng, n)
		u := Union(a, b)
		i := Intersect(a, b)
		// |A| + |B| = |A∪B| + |A∩B|
		if a.Count()+b.Count() != u.Count()+i.Count() {
			return false
		}
		// A\B ∪ A∩B = A
		if !Union(Subtract(a, b), i).Equal(a) {
			return false
		}
		// Union is commutative; intersect distributes.
		if !Union(b, a).Equal(u) {
			return false
		}
		if u.IntersectionCount(a) != a.Count() {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice(50, []int{1, 2, 3})
	c := a.Clone()
	c.Add(10)
	if a.Contains(10) {
		t.Fatal("Clone shares storage with original")
	}
	a.Clear()
	if c.Count() != 4 {
		t.Fatal("Clear of original affected clone")
	}
}

func TestCopyFrom(t *testing.T) {
	a := FromSlice(50, []int{1, 2, 3})
	b := New(50)
	b.CopyFrom(a)
	if !b.Equal(a) {
		t.Fatal("CopyFrom mismatch")
	}
}

func BenchmarkCount(b *testing.B) {
	s := Full(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Count()
	}
}

func BenchmarkUnionWith(b *testing.B) {
	s := Full(4096)
	t := Full(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.UnionWith(t)
	}
}
