#!/bin/sh
# End-to-end smoke test for the cluster tier: start 3 `powersched serve`
# backends over one shared state dir plus a `powersched route` front
# end, check stateless answers through the router are byte-identical to
# a single clean process, open and mutate sessions through the router,
# then kill -9 the backend owning the most sessions mid-traffic and
# check every session fails over — same digest, byte-identical re-solve
# — while the router's /metrics shows the retries, failover, and
# ejection counters moving. Usage: scripts/cluster_smoke.sh [baseport]
set -eu
baseport="${1:-8940}"
refport="$baseport"
p1=$((baseport + 1)); p2=$((baseport + 2)); p3=$((baseport + 3))
rport=$((baseport + 4))
ref="http://127.0.0.1:$refport"
router="http://127.0.0.1:$rport"
work="$(mktemp -d)"
bin="$work/powersched"
state="$work/state"
mkdir -p "$state"
pids=""
trap 'for p in $pids; do kill "$p" 2>/dev/null || true; done; wait; rm -rf "$work"' EXIT

go build -o "$bin" ./cmd/powersched

wait_healthy() {
    for i in $(seq 1 50); do
        if curl -fsS "$1/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "no /healthz from $1" >&2
    exit 1
}

# The clean-process reference (in-memory) and the 3-backend cluster.
"$bin" serve -addr "127.0.0.1:$refport" -workers 1 &
pids="$pids $!"
for port in $p1 $p2 $p3; do
    "$bin" serve -addr "127.0.0.1:$port" -workers 1 -state-dir "$state" -lazy-sessions &
    pids="$pids $!"
    eval "pid_$port=\$!"
done
"$bin" route -addr "127.0.0.1:$rport" \
    -backends "http://127.0.0.1:$p1,http://127.0.0.1:$p2,http://127.0.0.1:$p3" \
    -probe-interval 100ms -backoff-base 5ms -backoff-cap 50ms &
pids="$pids $!"
for url in "$ref" "http://127.0.0.1:$p1" "http://127.0.0.1:$p2" "http://127.0.0.1:$p3" "$router"; do
    wait_healthy "$url"
done

req='{
  "procs": 2, "horizon": 12,
  "cost": {"model": "perproc", "alphas": [2, 4], "rates": [1, 1]},
  "jobs": [
    {"allowed": [{"proc": 0, "time": 1}, {"proc": 0, "time": 2}]},
    {"allowed": [{"proc": 0, "time": 2}, {"proc": 1, "time": 3}]},
    {"value": 2, "allowed": [{"proc": 1, "time": 8}]}
  ]
}'
mut='{"mutations":[{"op":"add_job","job":{"allowed":[{"proc":1,"time":5},{"proc":1,"time":6}]}}]}'

# Stateless requests through the router answer byte-identically to the
# clean single process (cache_hit is volatile; compare the schedule).
want="$(curl -fsS -X POST -d "$req" "$ref/v1/schedule" | jq -c .schedule)"
got="$(curl -fsS -X POST -d "$req" "$router/v1/schedule" | jq -c .schedule)"
[ "$got" = "$want" ] || { echo "routed schedule differs: $got vs $want" >&2; exit 1; }
batch_want="$(curl -fsS -X POST -d "{\"requests\": [$req, $req]}" "$ref/v1/batch" | jq -c '[.results[].schedule]')"
batch_got="$(curl -fsS -X POST -d "{\"requests\": [$req, $req]}" "$router/v1/batch" | jq -c '[.results[].schedule]')"
[ "$batch_got" = "$batch_want" ] || { echo "routed batch differs" >&2; exit 1; }

# Sessions through the router: create 6, mutate each, record the acked
# digest and the solved schedule as the pre-kill reference.
ids=""
for i in $(seq 1 6); do
    sid="$(curl -fsS -X POST -d "$req" "$router/v1/session" | jq -r .id)"
    [ -n "$sid" ] && [ "$sid" != "null" ] || { echo "session create $i failed" >&2; exit 1; }
    digest="$(curl -fsS -X POST -d "$mut" "$router/v1/session/$sid/mutate" | jq -r .digest)"
    [ -n "$digest" ] && [ "$digest" != "null" ] || { echo "mutate $sid failed" >&2; exit 1; }
    echo "$digest" > "$work/digest.$sid"
    curl -fsS -X POST "$router/v1/session/$sid/solve" | jq -c .schedule > "$work/solve.$sid"
    ids="$ids $sid"
done

# kill -9 the backend owning the most sessions — no drain, no release;
# the shared journals are the only survivors.
victim="$(curl -fsS "$router/admin/ring" | jq -r '.sessions_per_backend | to_entries | max_by(.value) | .key')"
vport="${victim##*:}"
eval "vpid=\$pid_$vport"
echo "killing backend $victim (pid $vpid)"
kill -9 "$vpid"

# Mid-traffic failover: every session must answer with its acked digest
# and a byte-identical re-solve, from whichever backend inherits it.
for sid in $ids; do
    post_digest="$(curl -fsS "$router/v1/session/$sid" | jq -r .digest)"
    [ "$post_digest" = "$(cat "$work/digest.$sid")" ] \
        || { echo "session $sid digest after failover: $post_digest != $(cat "$work/digest.$sid")" >&2; exit 1; }
    post_solve="$(curl -fsS -X POST "$router/v1/session/$sid/solve" | jq -c .schedule)"
    [ "$post_solve" = "$(cat "$work/solve.$sid")" ] \
        || { echo "session $sid re-solve after failover differs" >&2; exit 1; }
done

# Stateless traffic still byte-identical with a backend down.
got="$(curl -fsS -X POST -d "$req" "$router/v1/schedule" | jq -c .schedule)"
[ "$got" = "$want" ] || { echo "post-kill routed schedule differs" >&2; exit 1; }

# The router's counters must show what just happened: retries burned on
# the dead backend, and (once the prober catches up) its ejection.
curl -fsS "$router/metrics" | grep -q '^powersched_route_retries_total [1-9]' \
    || { echo "router /metrics shows no retries after a kill" >&2; exit 1; }
for i in $(seq 1 50); do
    if curl -fsS "$router/metrics" | grep -q '^powersched_route_ejections_total [1-9]'; then break; fi
    [ "$i" = 50 ] && { echo "router never ejected the dead backend" >&2; exit 1; }
    sleep 0.1
done
curl -fsS "$router/metrics" | grep -q '^powersched_route_sheds_total ' \
    || { echo "router /metrics missing shed counter" >&2; exit 1; }
curl -fsS "$router/stats" | jq -e '.sessions == 6 and ([.backends[] | select(.alive)] | length) == 2' >/dev/null \
    || { echo "router /stats does not show 6 sessions on 2 alive backends" >&2; exit 1; }

echo "cluster smoke OK (byte-identical routing + kill -9 failover)"
