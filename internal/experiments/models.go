package experiments

import (
	"math"
	"math/rand"

	"repro/internal/gapdp"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/schedexact"
	"repro/internal/stats"
	"repro/internal/workload"
)

// e17Row is one cost-model family in the scenario matrix: a generator
// producing a small instance priced by that model, sized so the exact
// solver stays tractable (n ≤ 12, few allowed slots per job).
type e17Row struct {
	name string
	gen  func(rng *rand.Rand, quick bool) *sched.Instance
}

// e17Planted builds the standard small planted instance under a model.
// quick: 2 procs × 2 intervals × 2 jobs (n=8, ≤3 slots/job); full adds a
// third interval per proc (n=12) — both far inside schedexact's range.
func e17Planted(rng *rand.Rand, quick bool, cost power.CostModel) *sched.Instance {
	intervals := 3
	if quick {
		intervals = 2
	}
	ins, _ := workload.PlantedSchedule(rng, workload.PlantedParams{
		Procs: 2, Horizon: e17Horizon, IntervalsPerProc: intervals, JobsPerInterval: 2,
		ExtraSlotsPerJob: 1, ValueSpread: 2,
		Cost: cost,
	})
	return ins
}

const e17Horizon = 18

// e17Rows lists every bundled cost model. The speed-scaled and
// sleep-state rows come from their scenario generators
// (workload.HeterogeneousCluster, workload.BurstySleep), so E17 also
// exercises the generator → model pairing end to end.
func e17Rows() []e17Row {
	return []e17Row{
		{"affine", func(rng *rand.Rand, quick bool) *sched.Instance {
			return e17Planted(rng, quick, power.Affine{Alpha: 4, Rate: 1})
		}},
		{"perproc", func(rng *rand.Rand, quick bool) *sched.Instance {
			return e17Planted(rng, quick, power.NewPerProcessor([]float64{3, 5}, []float64{1, 0.5}))
		}},
		{"timeofuse", func(rng *rand.Rand, quick bool) *sched.Instance {
			return e17Planted(rng, quick, power.NewTimeOfUse([]float64{4, 2}, []float64{1, 1.5},
				workload.MarketTrace(rng, e17Horizon)))
		}},
		{"superlinear", func(rng *rand.Rand, quick bool) *sched.Instance {
			return e17Planted(rng, quick, power.Superlinear{Alpha: 3, Rate: 1, Fan: 0.05, Exp: 1.6})
		}},
		{"speedscaled", func(rng *rand.Rand, quick bool) *sched.Instance {
			ins, _ := workload.HeterogeneousCluster(rng, 2, e17Horizon, 2, 3)
			return ins
		}},
		{"sleepstate", func(rng *rand.Rand, quick bool) *sched.Instance {
			bursts := 3
			if quick {
				bursts = 2
			}
			// Wake 2 sits between idle·gap and busy·gap for typical
			// burst spacings: separate wakes beat spanning the gap, yet
			// keeping alive beats re-waking — the regime where the
			// schedule-aware hook's credit (hw/add < 1) is visible.
			ins, _ := workload.BurstySleep(rng, 2, e17Horizon, bursts, 2, 2)
			return ins
		}},
		{"composite", func(rng *rand.Rand, quick bool) *sched.Instance {
			c := power.NewComposite([]float64{4, 2}, []float64{1, 1.4}, 2,
				workload.MarketTrace(rng, e17Horizon))
			c.Block(0, rng.Intn(e17Horizon))
			c.Block(1, rng.Intn(e17Horizon))
			return e17Planted(rng, quick, c.Freeze())
		}},
	}
}

// E17 runs the scenario matrix against ground truth: for every cost
// model — the four originals and the three scenario additions — the
// greedy's schedule-all cost is compared to the exact optimum
// (schedexact) on small instances, checking Theorem 2.2.1's O(log n)
// envelope model by model. A dedicated one-processor row cross-validates
// the two exact solvers: with wake cost ≤ per-slot rate, covering an
// idle slot never beats re-waking, so OPT = α·(MinGaps+1) + rate·n with
// MinGaps from the gap DP — schedexact must agree exactly. The hw/add
// column reports the schedule-aware hardware price (Schedule
// .HardwareCost) relative to the additive objective: 1 for additive
// models, < 1 when the sleep-state hook credits kept-alive gaps.
func E17(cfg Config) *stats.Table {
	tbl := stats.NewTable("E17 — scenario matrix: greedy vs exact optimum per cost model",
		"model", "n", "greedy/opt", "max", "envelope 2(log2(n+1)+1)", "bound ok", "hw/add", "xcheck")
	trials := pick(cfg, 6, 3)
	run := func(name string, gen func(rng *rand.Rand, quick bool) *sched.Instance,
		xcheck func(rng *rand.Rand, ins *sched.Instance, opt *sched.Schedule) float64) {
		ratios := make([]float64, trials)
		ok := make([]float64, trials)
		hw := make([]float64, trials)
		xc := make([]float64, trials)
		ns := make([]float64, trials)
		parTrials(trials, cfg.Seed, func(trial int, rng *rand.Rand) {
			ins := gen(rng, cfg.Quick)
			n := len(ins.Jobs)
			ns[trial] = float64(n)
			greedy, err := sched.ScheduleAll(ins, sched.Options{Lazy: true, Workers: cfg.Workers})
			if err != nil {
				return // leaves zeros; planted instances are feasible
			}
			opt, err := schedexact.Optimal(ins, 0)
			if err != nil {
				return
			}
			ratios[trial] = greedy.Cost / opt.Cost
			envelope := 2 * (math.Log2(float64(n)+1) + 1)
			if ratios[trial] <= envelope+1e-9 {
				ok[trial] = 1
			}
			hw[trial] = greedy.HardwareCost(ins) / greedy.Cost
			if xcheck != nil {
				xc[trial] = xcheck(rng, ins, opt)
			} else {
				xc[trial] = 1
			}
		})
		n := stats.Mean(ns)
		maxRatio := 0.0
		for _, r := range ratios {
			if r > maxRatio {
				maxRatio = r
			}
		}
		tbl.AddRow(name, n, stats.Mean(ratios), maxRatio,
			2*(math.Log2(n+1)+1), stats.Mean(ok), stats.Mean(hw), stats.Mean(xc))
	}
	for _, row := range e17Rows() {
		run(row.name, row.gen, nil)
	}
	// One-processor affine row with wake ≤ rate: the gap DP is an
	// independent exact optimum, cross-checked against schedexact.
	run("affine-1p/gapdp", func(rng *rand.Rand, quick bool) *sched.Instance {
		windows := 3
		if quick {
			windows = 2
		}
		ins, _ := workload.PlantedSchedule(rng, workload.PlantedParams{
			Procs: 1, Horizon: 4 * windows, IntervalsPerProc: windows, JobsPerInterval: 2,
			Cost: power.Affine{Alpha: 1, Rate: 2},
		})
		return ins
	}, gapdpCrossCheck)
	tbl.Note = "Shape check: greedy/opt ≥ 1 and under the envelope in every row (bound ok = 1); hw/add = 1 for additive models and < 1 for sleepstate (the hook credits kept-alive gaps); xcheck = 1 on the 1-proc row (gap-DP optimum equals schedexact)."
	return tbl
}

// gapdpCrossCheck converts a one-processor contiguous-window instance to
// the gap DP's form and returns 1 when α·(MinGaps+1) + rate·n equals
// schedexact's optimal cost. Valid because the instance uses
// Affine{Alpha: 1, Rate: 2} with Alpha ≤ Rate: covering an idle slot
// (≥ rate) never beats waking anew (α), so optimal awake intervals are
// exactly the assignment's busy blocks and minimizing cost is minimizing
// blocks.
func gapdpCrossCheck(rng *rand.Rand, ins *sched.Instance, opt *sched.Schedule) float64 {
	g := &gapdp.Instance{Horizon: ins.Horizon}
	for _, job := range ins.Jobs {
		lo, hi := ins.Horizon, 0
		for _, s := range job.Allowed {
			if s.Time < lo {
				lo = s.Time
			}
			if s.Time+1 > hi {
				hi = s.Time + 1
			}
		}
		g.Jobs = append(g.Jobs, gapdp.Job{Release: lo, Deadline: hi, Value: 1})
	}
	minGaps, err := gapdp.MinGaps(g)
	if err != nil {
		return 0
	}
	want := 1*float64(minGaps+1) + 2*float64(len(ins.Jobs))
	if math.Abs(want-opt.Cost) < 1e-9 {
		return 1
	}
	return 0
}
