package power

import (
	"math"
	"sync"
	"testing"
)

func TestAffine(t *testing.T) {
	m := Affine{Alpha: 3, Rate: 2}
	if got := m.Cost(0, 1, 4); got != 9 {
		t.Fatalf("Cost = %v, want 9", got)
	}
	if got := m.Cost(5, 2, 2); got != 3 {
		t.Fatalf("empty interval cost = %v, want alpha 3", got)
	}
}

func TestPerProcessor(t *testing.T) {
	m := NewPerProcessor([]float64{1, 10}, []float64{1, 2})
	if got := m.Cost(0, 0, 3); got != 4 {
		t.Fatalf("proc0 = %v, want 4", got)
	}
	if got := m.Cost(1, 0, 3); got != 16 {
		t.Fatalf("proc1 = %v, want 16", got)
	}
}

func TestPerProcessorPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPerProcessor([]float64{1}, []float64{1, 2})
}

func TestTimeOfUse(t *testing.T) {
	m := NewTimeOfUse([]float64{2}, []float64{1}, []float64{5, 1, 1, 5})
	if got := m.Cost(0, 1, 3); got != 4 {
		t.Fatalf("off-peak = %v, want 4", got)
	}
	if got := m.Cost(0, 0, 4); got != 14 {
		t.Fatalf("full day = %v, want 14", got)
	}
	if got := m.Cost(0, 2, 6); !math.IsInf(got, 1) {
		t.Fatalf("out-of-horizon = %v, want +Inf", got)
	}
	if m.Horizon() != 4 {
		t.Fatalf("Horizon = %d", m.Horizon())
	}
}

func TestTimeOfUsePeakAvoidanceIncentive(t *testing.T) {
	// Two short intervals skipping the peak must beat one long interval
	// when alpha is small — the behaviour §1 item 2 motivates.
	m := NewTimeOfUse([]float64{0.5}, []float64{1}, []float64{1, 1, 9, 1, 1})
	long := m.Cost(0, 0, 5)
	split := m.Cost(0, 0, 2) + m.Cost(0, 3, 5)
	if split >= long {
		t.Fatalf("split %v should beat long %v", split, long)
	}
}

func TestSuperlinear(t *testing.T) {
	m := Superlinear{Alpha: 1, Rate: 1, Fan: 0.5, Exp: 2}
	if got := m.Cost(0, 0, 2); got != 1+2+2 {
		t.Fatalf("Cost = %v, want 5", got)
	}
	// Superlinearity: splitting a long interval saves fan cost.
	long := m.Cost(0, 0, 10)
	split := m.Cost(0, 0, 5) + m.Cost(0, 5, 10)
	if split >= long {
		t.Fatalf("split %v should beat long %v under superlinear fan", split, long)
	}
}

func TestUnavailable(t *testing.T) {
	u := NewUnavailable(Affine{Alpha: 1, Rate: 1}, 10)
	u.Block(0, 5)
	if got := u.Cost(0, 0, 5); got != 6 {
		t.Fatalf("non-overlapping = %v, want 6", got)
	}
	if got := u.Cost(0, 3, 7); !math.IsInf(got, 1) {
		t.Fatalf("overlapping = %v, want +Inf", got)
	}
	if got := u.Cost(1, 3, 7); got != 5 {
		t.Fatalf("other proc = %v, want 5", got)
	}
}

// TestCostModelContractNoPanic drives every model with hostile processor
// indices and interval bounds: the CostModel contract requires +Inf, never
// a panic, for anything the model cannot price.
func TestCostModelContractNoPanic(t *testing.T) {
	frozen := NewUnavailable(NewPerProcessor([]float64{1, 2}, []float64{1, 1}), 8)
	frozen.Block(0, 3)
	frozen.Freeze()
	models := []struct {
		name  string
		m     CostModel
		procs int // configured processor count (0 = proc-agnostic)
	}{
		{"affine", Affine{Alpha: 1, Rate: 1}, 0},
		{"superlinear", Superlinear{Alpha: 1, Rate: 1, Fan: 0.5, Exp: 2}, 0},
		{"perproc", NewPerProcessor([]float64{1, 2}, []float64{1, 1}), 2},
		{"timeofuse", NewTimeOfUse([]float64{1, 2}, []float64{1, 1}, []float64{1, 2, 3, 4}), 2},
		{"unavailable", frozen, 2},
	}
	for _, tc := range models {
		for _, proc := range []int{-1, -1000, 2, 3, 1 << 20} {
			for _, iv := range [][2]int{{0, 2}, {-3, 2}, {1, 100}, {2, 2}} {
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Errorf("%s: Cost(%d, %d, %d) panicked: %v", tc.name, proc, iv[0], iv[1], r)
						}
					}()
					got := tc.m.Cost(proc, iv[0], iv[1])
					if tc.procs > 0 && (proc < 0 || proc >= tc.procs) && !math.IsInf(got, 1) {
						t.Errorf("%s: Cost(%d, %d, %d) = %v for out-of-range proc, want +Inf",
							tc.name, proc, iv[0], iv[1], got)
					}
				}()
			}
		}
	}
}

// TestCostModelConcurrentReads hammers every model from many goroutines;
// meaningful under -race, where any shared mutation in Cost would trip.
func TestCostModelConcurrentReads(t *testing.T) {
	frozen := NewUnavailable(Affine{Alpha: 1, Rate: 1}, 16)
	frozen.Block(1, 7)
	frozen.Freeze()
	models := []CostModel{
		Affine{Alpha: 2, Rate: 1},
		Superlinear{Alpha: 1, Rate: 1, Fan: 0.1, Exp: 1.5},
		NewPerProcessor([]float64{1, 2, 3}, []float64{1, 1, 1}),
		NewTimeOfUse([]float64{1, 2}, []float64{1, 1}, []float64{1, 2, 3, 4, 5, 6}),
		frozen,
	}
	var wg sync.WaitGroup
	for _, m := range models {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(m CostModel, g int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					m.Cost((g+i)%4-1, i%8, i%8+(g%3))
				}
			}(m, g)
		}
	}
	wg.Wait()
}

func TestUnavailableFreeze(t *testing.T) {
	u := NewUnavailable(Affine{Alpha: 1, Rate: 1}, 10)
	u.Block(0, 5)
	if u.Frozen() {
		t.Fatal("frozen before Freeze")
	}
	if got := u.Freeze(); got != u {
		t.Fatal("Freeze should return the receiver")
	}
	if !u.Frozen() || !u.Blocked(0, 5) || u.Blocked(0, 4) || u.Blocked(9, 5) {
		t.Fatal("frozen state or Blocked accessor wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Block after Freeze should panic")
		}
	}()
	u.Block(0, 6)
}

func TestUnavailableBlockOutOfHorizonPanics(t *testing.T) {
	u := NewUnavailable(Affine{Alpha: 1, Rate: 1}, 4)
	for _, tt := range []int{-1, 4, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Block(0, %d) should panic for horizon 4", tt)
				}
			}()
			u.Block(0, tt)
		}()
	}
}

func TestFuncAdapter(t *testing.T) {
	m := Func(func(proc, start, end int) float64 { return float64(proc) + float64(end-start) })
	if got := m.Cost(2, 0, 3); got != 5 {
		t.Fatalf("Func = %v, want 5", got)
	}
}
