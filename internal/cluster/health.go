package cluster

// This file is the router's health machinery: the per-backend state a
// routing decision reads (alive? breaker open?), the probe loop that
// ejects and readmits backends with hysteresis, and the global retry
// budget that keeps a degrading cluster from amplifying its own load.
//
// Two failure detectors run at different speeds on purpose. The probe
// loop is the slow, authoritative one: it drives /healthz every
// ProbeInterval and flips the alive bit only after EjectAfter straight
// failures (and back only after ReadmitAfter straight successes, the
// slower edge, so a flapping backend stays ejected). The circuit
// breaker is the fast, request-path one: BreakerThreshold consecutive
// request failures open it immediately, before the prober has even
// noticed, and one trial request half-opens it after the cooldown.

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// backendState is the router's view of one backend. Guarded by its own
// mutex so the request path never contends with the router's ring lock.
type backendState struct {
	name string

	mu            sync.Mutex
	alive         bool
	probeFails    int
	probeOKs      int
	reqFails      int
	breakerUntil  time.Time // zero = closed
	breakerTrial  bool      // half-open: one trial in flight
}

func newBackendState(name string) *backendState {
	return &backendState{name: name, alive: true}
}

func (b *backendState) isAlive() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.alive
}

// breakerOpen reports whether the circuit rejects requests at now.
func (b *backendState) breakerOpen(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.breakerRejectsLocked(now)
}

func (b *backendState) breakerRejectsLocked(now time.Time) bool {
	if b.breakerUntil.IsZero() {
		return false
	}
	if now.Before(b.breakerUntil) {
		return true
	}
	// Cooled down: half-open. One trial request may pass; the rest keep
	// being rejected until the trial reports.
	return b.breakerTrial
}

// admit reports whether the request path may try this backend at now,
// claiming the half-open trial slot when the breaker just cooled down.
func (b *backendState) admit(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.alive {
		return false
	}
	if b.breakerUntil.IsZero() {
		return true
	}
	if now.Before(b.breakerUntil) {
		return false
	}
	if b.breakerTrial {
		return false
	}
	b.breakerTrial = true
	return true
}

// reportRequest feeds a request outcome into the breaker. Returns true
// when this report tripped the breaker open.
func (b *backendState) reportRequest(ok bool, now time.Time, threshold int, cooldown time.Duration) (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.reqFails = 0
		b.breakerUntil = time.Time{}
		b.breakerTrial = false
		return false
	}
	b.reqFails++
	b.breakerTrial = false
	if b.reqFails >= threshold && b.breakerUntil.IsZero() {
		b.breakerUntil = now.Add(cooldown)
		return true
	}
	if !b.breakerUntil.IsZero() {
		// A failed half-open trial re-arms the cooldown.
		b.breakerUntil = now.Add(cooldown)
	}
	return false
}

// reportProbe feeds a probe outcome into the eject/readmit hysteresis.
// Returns the alive transition, if any.
func (b *backendState) reportProbe(ok bool, ejectAfter, readmitAfter int) (ejected, readmitted bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.probeOKs++
		b.probeFails = 0
		if !b.alive && b.probeOKs >= readmitAfter {
			b.alive = true
			b.reqFails = 0
			b.breakerUntil = time.Time{}
			b.breakerTrial = false
			return false, true
		}
		return false, false
	}
	b.probeFails++
	b.probeOKs = 0
	if b.alive && b.probeFails >= ejectAfter {
		b.alive = false
		return true, false
	}
	return false, false
}

// probeLoop drives /healthz against every backend until Close.
func (r *Router) probeLoop() {
	defer close(r.done)
	ticker := time.NewTicker(r.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
		}
		r.mu.Lock()
		states := make([]*backendState, 0, len(r.backends))
		for _, b := range r.backends {
			states = append(states, b)
		}
		r.mu.Unlock()
		for _, b := range states {
			ok := r.probe(b.name)
			ejected, readmitted := b.reportProbe(ok, r.cfg.EjectAfter, r.cfg.ReadmitAfter)
			if ejected {
				r.ejections.Add(1)
				r.cfg.Logf("powersched-route: backend %s ejected (%d straight probe failures)", b.name, r.cfg.EjectAfter)
			}
			if readmitted {
				r.readmissions.Add(1)
				r.cfg.Logf("powersched-route: backend %s readmitted (%d straight probe successes)", b.name, r.cfg.ReadmitAfter)
			}
		}
	}
}

// probe issues one GET /healthz through the injectable transport — the
// same seam requests use, so netfault latency and drops hit probes too.
func (r *Router) probe(backend string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, backend+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// retryBudget is a token bucket priced in retries: first attempts are
// free, every attempt beyond the first takes a token, and an empty
// bucket means the cluster is already struggling — shed instead of
// amplifying (429 + Retry-After upstream).
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	rate   float64 // tokens per second
	last   time.Time
}

func (b *retryBudget) take(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.max {
			b.tokens = b.max
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}
