// Quickstart: schedule three jobs on one processor with the classical
// "restart cost α plus length" energy model and print the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	powersched "repro"
)

func main() {
	// One processor, 12 slots. Jobs 0 and 1 overlap in the morning; job 2
	// can only run in the evening.
	window := func(lo, hi int) []powersched.SlotKey {
		var out []powersched.SlotKey
		for t := lo; t < hi; t++ {
			out = append(out, powersched.SlotKey{Proc: 0, Time: t})
		}
		return out
	}
	ins := &powersched.Instance{
		Procs:   1,
		Horizon: 12,
		Jobs: []powersched.Job{
			{Value: 1, Allowed: window(0, 4)},
			{Value: 1, Allowed: window(2, 6)},
			{Value: 1, Allowed: window(9, 12)},
		},
		Cost: powersched.Affine{Alpha: 3, Rate: 1}, // wake cost 3, 1 energy/slot
	}

	s, err := powersched.ScheduleAll(ins, powersched.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scheduled %d/%d jobs, total energy %.1f\n", s.Scheduled, len(ins.Jobs), s.Cost)
	fmt.Println("awake intervals:")
	for _, iv := range s.Intervals {
		fmt.Printf("  processor %d awake [%d, %d)\n", iv.Proc, iv.Start, iv.End)
	}
	for j, a := range s.Assignment {
		fmt.Printf("  job %d -> processor %d, slot %d\n", j, a.Proc, a.Time)
	}
	if err := s.Validate(ins); err != nil {
		log.Fatal("schedule failed validation: ", err)
	}
	fmt.Println("schedule validated ✓")
}
