package schedexact

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/power"
	"repro/internal/sched"
)

func window(proc, lo, hi int) []sched.SlotKey {
	var out []sched.SlotKey
	for t := lo; t < hi; t++ {
		out = append(out, sched.SlotKey{Proc: proc, Time: t})
	}
	return out
}

func randomInstance(rng *rand.Rand, procs, horizon, jobs int) *sched.Instance {
	used := map[sched.SlotKey]bool{}
	var js []sched.Job
	for len(js) < jobs {
		s := sched.SlotKey{Proc: rng.Intn(procs), Time: rng.Intn(horizon)}
		if used[s] {
			continue
		}
		used[s] = true
		allowed := []sched.SlotKey{s}
		for k := 0; k < rng.Intn(3); k++ {
			allowed = append(allowed, sched.SlotKey{Proc: rng.Intn(procs), Time: rng.Intn(horizon)})
		}
		js = append(js, sched.Job{Value: 1 + float64(rng.Intn(4)), Allowed: allowed})
	}
	return &sched.Instance{Procs: procs, Horizon: horizon, Jobs: js,
		Cost: power.Affine{Alpha: 2, Rate: 1}}
}

func TestOptimalTiny(t *testing.T) {
	// Two jobs in adjacent slots: one interval [0,2) of cost 2+2=4 beats
	// two unit intervals of cost 3+3=6.
	ins := &sched.Instance{
		Procs: 1, Horizon: 4,
		Jobs: []sched.Job{
			{Value: 1, Allowed: window(0, 0, 1)},
			{Value: 1, Allowed: window(0, 1, 2)},
		},
		Cost: power.Affine{Alpha: 2, Rate: 1},
	}
	s, err := Optimal(ins, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost != 4 {
		t.Fatalf("optimal cost = %v, want 4", s.Cost)
	}
	if len(s.Intervals) != 1 {
		t.Fatalf("intervals = %v, want one merged interval", s.Intervals)
	}
}

func TestOptimalPrefersGapUnderTimeOfUse(t *testing.T) {
	// A price spike in the middle makes two separate intervals optimal.
	price := []float64{1, 1, 50, 1, 1}
	ins := &sched.Instance{
		Procs: 1, Horizon: 5,
		Jobs: []sched.Job{
			{Value: 1, Allowed: window(0, 0, 2)},
			{Value: 1, Allowed: window(0, 3, 5)},
		},
		Cost: power.NewTimeOfUse([]float64{1}, []float64{1}, price),
	}
	s, err := Optimal(ins, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Intervals) != 2 {
		t.Fatalf("intervals = %v, want 2 (avoid the spike)", s.Intervals)
	}
}

func TestOptimalUnschedulable(t *testing.T) {
	ins := &sched.Instance{
		Procs: 1, Horizon: 3,
		Jobs: []sched.Job{
			{Allowed: []sched.SlotKey{{Proc: 0, Time: 0}}},
			{Allowed: []sched.SlotKey{{Proc: 0, Time: 0}}},
		},
		Cost: power.Affine{Alpha: 1, Rate: 1},
	}
	if _, err := Optimal(ins, 0); !errors.Is(err, sched.ErrUnschedulable) {
		t.Fatalf("err = %v", err)
	}
}

func TestOptimalBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ins := randomInstance(rng, 2, 10, 6)
	if _, err := Optimal(ins, 1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

// TestGreedyWithinLogFactor: ScheduleAll must stay within the Theorem 2.2.1
// envelope of the true optimum on random small instances — and never beat
// the optimum.
func TestGreedyWithinLogFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		ins := randomInstance(rng, 2, 8, 4)
		opt, err := Optimal(ins, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := opt.Validate(ins); err != nil {
			t.Fatal(err)
		}
		grd, err := sched.ScheduleAll(ins, sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if grd.Cost < opt.Cost-1e-9 {
			t.Fatalf("greedy %v beat 'optimal' %v — exact solver is wrong", grd.Cost, opt.Cost)
		}
		n := float64(len(ins.Jobs))
		envelope := 4 * opt.Cost * (math.Log2(n+1) + 1)
		if grd.Cost > envelope {
			t.Fatalf("greedy %v outside envelope %v (opt %v)", grd.Cost, envelope, opt.Cost)
		}
	}
}

func TestOptimalPrize(t *testing.T) {
	ins := &sched.Instance{
		Procs: 1, Horizon: 6,
		Jobs: []sched.Job{
			{Value: 5, Allowed: window(0, 0, 2)},
			{Value: 3, Allowed: window(0, 4, 6)},
			{Value: 2, Allowed: window(0, 4, 6)},
		},
		Cost: power.Affine{Alpha: 3, Rate: 1},
	}
	// Z = 5: scheduling only job 0 (one unit interval, cost 4) is optimal.
	s, err := OptimalPrize(ins, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Value < 5 {
		t.Fatalf("value %v < 5", s.Value)
	}
	if s.Cost != 4 {
		t.Fatalf("cost = %v, want 4 (%v)", s.Cost, s.Intervals)
	}
	// Z = 8: need job 0 plus one of the late jobs; the cheapest cover puts
	// job 0 at t=1 and a late job at t=4 under one interval [1,5): 3+4=7.
	s, err = OptimalPrize(ins, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Value < 8 || s.Cost != 7 {
		t.Fatalf("value %v cost %v, want value>=8 cost 7", s.Value, s.Cost)
	}
}

func TestOptimalPrizeUnreachable(t *testing.T) {
	ins := randomInstance(rand.New(rand.NewSource(4)), 1, 6, 3)
	if _, err := OptimalPrize(ins, 1e9, 0); !errors.Is(err, sched.ErrValueUnreachable) {
		t.Fatalf("err = %v", err)
	}
}

// TestPrizeGreedyNeverBeatsExact cross-validates PrizeCollectingExact
// against the exact prize optimum.
func TestPrizeGreedyNeverBeatsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		ins := randomInstance(rng, 1, 8, 4)
		total := 0.0
		for _, j := range ins.Jobs {
			total += j.Value
		}
		z := 0.6 * total
		opt, err := OptimalPrize(ins, z, 0)
		if err != nil {
			t.Fatal(err)
		}
		grd, err := sched.PrizeCollectingExact(ins, z, sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if grd.Value < z-1e-9 {
			t.Fatalf("greedy value %v < Z %v", grd.Value, z)
		}
		if grd.Cost < opt.Cost-1e-9 {
			t.Fatalf("greedy cost %v beat exact %v", grd.Cost, opt.Cost)
		}
	}
}

func TestBaselinesValidateAndOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 15; trial++ {
		ins := randomInstance(rng, 2, 10, 5)
		ao, err := AlwaysOn(ins)
		if err != nil {
			t.Fatal(err)
		}
		pj, err := PerJob(ins)
		if err != nil {
			t.Fatal(err)
		}
		mg, err := MergeGaps(ins, 2)
		if err != nil {
			t.Fatal(err)
		}
		for name, s := range map[string]*sched.Schedule{"always-on": ao, "per-job": pj, "merge-gaps": mg} {
			if err := s.Validate(ins); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if s.Scheduled != len(ins.Jobs) {
				t.Fatalf("%s scheduled %d of %d", name, s.Scheduled, len(ins.Jobs))
			}
		}
		opt, err := Optimal(ins, 0)
		if err != nil {
			t.Fatal(err)
		}
		for name, s := range map[string]*sched.Schedule{"always-on": ao, "per-job": pj, "merge-gaps": mg} {
			if s.Cost < opt.Cost-1e-9 {
				t.Fatalf("%s cost %v beat optimal %v", name, s.Cost, opt.Cost)
			}
		}
	}
}

func TestMergeGapsZeroEqualsBlocks(t *testing.T) {
	// maxGap 0 merges only contiguous busy slots.
	ins := &sched.Instance{
		Procs: 1, Horizon: 6,
		Jobs: []sched.Job{
			{Value: 1, Allowed: []sched.SlotKey{{Proc: 0, Time: 0}}},
			{Value: 1, Allowed: []sched.SlotKey{{Proc: 0, Time: 1}}},
			{Value: 1, Allowed: []sched.SlotKey{{Proc: 0, Time: 4}}},
		},
		Cost: power.Affine{Alpha: 1, Rate: 1},
	}
	s, err := MergeGaps(ins, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Intervals) != 2 {
		t.Fatalf("intervals = %v, want 2 blocks", s.Intervals)
	}
	// maxGap large merges everything into one interval.
	s2, err := MergeGaps(ins, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Intervals) != 1 {
		t.Fatalf("intervals = %v, want 1", s2.Intervals)
	}
}

func BenchmarkOptimalSmall(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ins := randomInstance(rng, 2, 8, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimal(ins, 0); err != nil {
			b.Fatal(err)
		}
	}
}
