package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/workload"
)

func TestSolveAllSmallWithExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		ins, _ := workload.PlantedSchedule(rng, workload.PlantedParams{
			Procs: 2, Horizon: 12, IntervalsPerProc: 1, JobsPerInterval: 2,
			ExtraSlotsPerJob: 1,
			Cost:             power.Affine{Alpha: 2, Rate: 1},
		})
		if _, err := SolveAll(ins, 2_000_000); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSolveAllLargerWithoutExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ins, _ := workload.PlantedSchedule(rng, workload.PlantedParams{
		Procs: 3, Horizon: 40, IntervalsPerProc: 2, JobsPerInterval: 4,
		ExtraSlotsPerJob: 2,
		Cost:             power.PerProcessor{Alpha: []float64{2, 4, 6}, Rate: []float64{1, 0.5, 2}},
	})
	r, err := SolveAll(ins, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Exact != nil {
		t.Fatal("exact should be disabled")
	}
	if r.Greedy.Cost > r.AlwaysOn.Cost {
		t.Fatalf("greedy %v should not lose to always-on %v", r.Greedy.Cost, r.AlwaysOn.Cost)
	}
}

// TestSolveAllStress fuzzes random instances through the whole system;
// SolveAll's internal cross-checks are the assertions.
func TestSolveAllStress(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		ins := workload.MultiIntervalJobs(rng, 1+rng.Intn(3), 10+rng.Intn(10),
			3+rng.Intn(5), 1+rng.Intn(2), 2, nil)
		r, err := SolveAll(ins, 0)
		if errors.Is(err, sched.ErrUnschedulable) {
			continue // random windows may genuinely collide
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		_ = r
	}
}

func TestSolveAllUnschedulable(t *testing.T) {
	ins := &sched.Instance{
		Procs: 1, Horizon: 3,
		Jobs: []sched.Job{
			{Value: 1, Allowed: []sched.SlotKey{{Proc: 0, Time: 0}}},
			{Value: 1, Allowed: []sched.SlotKey{{Proc: 0, Time: 0}}},
		},
		Cost: power.Affine{Alpha: 1, Rate: 1},
	}
	if _, err := SolveAll(ins, 0); err == nil {
		t.Fatal("unschedulable instance accepted")
	}
}

// TestSolveAllNewArmsPopulated pins the PR-4 additions: the Workers>1
// parallel arm and the session mutation-replay arm are solved and agree
// with the default path byte for byte.
func TestSolveAllNewArmsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ins, _ := workload.PlantedSchedule(rng, workload.PlantedParams{
		Procs: 2, Horizon: 24, IntervalsPerProc: 2, JobsPerInterval: 3,
		ExtraSlotsPerJob: 1,
		Cost:             power.Affine{Alpha: 3, Rate: 1},
	})
	r, err := SolveAll(ins, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Parallel == nil || r.Session == nil {
		t.Fatal("parallel/session arms missing from the report")
	}
	if err := r.Session.SameAs(r.Fast); err != nil {
		t.Fatalf("session replay differs: %v", err)
	}
	if err := r.Parallel.SameAs(r.Lazy); err != nil {
		t.Fatalf("parallel differs from lazy: %v", err)
	}
}
