package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/sched"
)

// testSpec builds a deterministic, fully schedulable instance spec: each
// job gets a two-slot window, windows disjoint per processor, so ModeAll
// always succeeds and prize modes have headroom. Jobs must fit:
// jobs <= procs * (horizon/2).
func testSpec(procs, horizon, jobs int, cost CostSpec) InstanceSpec {
	if jobs > procs*(horizon/2) {
		panic("testSpec: too many jobs to stay trivially feasible")
	}
	spec := InstanceSpec{Procs: procs, Horizon: horizon, Cost: cost}
	for j := 0; j < jobs; j++ {
		proc := j % procs
		t := (j / procs) * 2
		spec.Jobs = append(spec.Jobs, JobSpec{
			Value:   float64(1 + j%3),
			Allowed: []SlotSpec{{Proc: proc, Time: t}, {Proc: proc, Time: t + 1}},
		})
	}
	return spec
}

// testSpecs covers every wire cost model.
func testSpecs() []InstanceSpec {
	price := make([]float64, 16)
	for t := range price {
		price[t] = 1 + float64(t%5)
	}
	return []InstanceSpec{
		testSpec(2, 16, 10, CostSpec{Model: "affine", Alpha: 2, Rate: 1}),
		testSpec(3, 16, 12, CostSpec{Model: "perproc",
			Alphas: []float64{1, 3, 5}, Rates: []float64{1, 0.5, 2}}),
		testSpec(2, 16, 8, CostSpec{Model: "timeofuse",
			Alphas: []float64{2, 2}, Rates: []float64{1, 1}, Price: price}),
		testSpec(2, 16, 9, CostSpec{Model: "superlinear", Alpha: 1, Rate: 1, Fan: 0.2, Exp: 1.5}),
		testSpec(2, 16, 6, CostSpec{Model: "unavailable",
			Base:    &CostSpec{Model: "affine", Alpha: 2, Rate: 1},
			Blocked: []SlotSpec{{Proc: 0, Time: 15}, {Proc: 1, Time: 14}}}),
	}
}

// specValue sums the (defaulted) job values of a spec.
func specValue(spec InstanceSpec) float64 {
	total := 0.0
	for _, j := range spec.Jobs {
		v := j.Value
		if v == 0 {
			v = 1
		}
		total += v
	}
	return total
}

// mixedRequests builds n requests cycling through instances, modes, and
// the Improve post-pass.
func mixedRequests(t *testing.T, n int) []Request {
	t.Helper()
	specs := testSpecs()
	reqs := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		spec := specs[i%len(specs)]
		switch i % 3 {
		case 1:
			spec.Mode, spec.Z, spec.Eps = "prize", specValue(spec)/2, 0.1
		case 2:
			spec.Mode, spec.Z = "prize-exact", specValue(spec)/2
		}
		spec.Improve = i%4 == 0
		req, err := BuildRequest(spec)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		reqs = append(reqs, req)
	}
	return reqs
}

func scheduleBytes(t *testing.T, s *sched.Schedule) []byte {
	t.Helper()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestServiceLoadMatchesSequential is the acceptance load test: 64+
// concurrent mixed-algorithm requests all validate and are byte-identical
// to the sequential library path, and a repeat wave is served from the
// digest cache.
func TestServiceLoadMatchesSequential(t *testing.T) {
	reqs := mixedRequests(t, 64)
	// Sequential reference, computed once per distinct cache key.
	want := map[string][]byte{}
	for i, req := range reqs {
		key := cacheKey(req)
		if _, ok := want[key]; ok {
			continue
		}
		ref, err := Solve(req)
		if err != nil {
			t.Fatalf("sequential solve %d: %v", i, err)
		}
		if err := ref.Validate(req.Instance); err != nil {
			t.Fatalf("sequential result %d invalid: %v", i, err)
		}
		want[key] = scheduleBytes(t, ref)
	}

	svc := New(Config{Workers: 8, QueueDepth: 16, CacheSize: 128})
	defer svc.Close(context.Background())

	results := svc.SubmitBatch(context.Background(), reqs)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
		if err := res.Schedule.Validate(reqs[i].Instance); err != nil {
			t.Fatalf("request %d: invalid schedule: %v", i, err)
		}
		if got := scheduleBytes(t, res.Schedule); !bytes.Equal(got, want[cacheKey(reqs[i])]) {
			t.Fatalf("request %d: service schedule differs from sequential:\n service: %s\n library: %s",
				i, got, want[cacheKey(reqs[i])])
		}
	}

	// Second identical wave: every request must now be a cache hit.
	results = svc.SubmitBatch(context.Background(), reqs)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("repeat request %d: %v", i, res.Err)
		}
		if !res.CacheHit {
			t.Fatalf("repeat request %d not served from cache", i)
		}
		if got := scheduleBytes(t, res.Schedule); !bytes.Equal(got, want[cacheKey(reqs[i])]) {
			t.Fatalf("repeat request %d: cached schedule differs from sequential", i)
		}
	}
	st := svc.Stats()
	if st.CacheHits < uint64(len(reqs)) {
		t.Fatalf("cache hits = %d, want >= %d", st.CacheHits, len(reqs))
	}
	if st.Submitted != uint64(2*len(reqs)) || st.Completed != st.Submitted {
		t.Fatalf("stats accounting off: %+v", st)
	}
	if st.Errors != 0 || st.Canceled != 0 {
		t.Fatalf("unexpected errors/cancels: %+v", st)
	}
}

// TestServiceConcurrentSharedInstance drives many goroutines through one
// shared instance and cost model — the -race proof that solving is
// read-only over shared request state.
func TestServiceConcurrentSharedInstance(t *testing.T) {
	spec := testSpecs()[4] // the Unavailable-masked instance
	req, err := BuildRequest(spec)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Solve(req)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := scheduleBytes(t, ref)

	svc := New(Config{Workers: 4, CacheSize: -1}) // no cache: every call solves
	defer svc.Close(context.Background())
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := svc.Submit(context.Background(), req) // shared Request value
			if err != nil {
				errs <- err
				return
			}
			if err := s.Validate(req.Instance); err != nil {
				errs <- err
				return
			}
			if got, _ := json.Marshal(s); !bytes.Equal(got, wantBytes) {
				errs <- fmt.Errorf("concurrent result diverged: %s", got)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestServiceModelReuse: one worker solving several thresholds against
// one instance must rebuild the model only once.
func TestServiceModelReuse(t *testing.T) {
	spec := testSpecs()[0]
	svc := New(Config{Workers: 1, CacheSize: -1})
	defer svc.Close(context.Background())
	for i := 0; i < 4; i++ {
		s := spec
		s.Mode, s.Z = "prize", float64(i+1)
		req, err := BuildRequest(s)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Submit(context.Background(), req); err != nil {
			t.Fatalf("z=%d: %v", i+1, err)
		}
	}
	if st := svc.Stats(); st.ModelReuses < 3 {
		t.Fatalf("model reuses = %d, want >= 3 (stats %+v)", st.ModelReuses, st)
	}
}

func TestServiceCacheOptOut(t *testing.T) {
	req, err := BuildRequest(testSpecs()[0])
	if err != nil {
		t.Fatal(err)
	}
	req.InstanceKey = "" // opt out
	svc := New(Config{Workers: 2})
	defer svc.Close(context.Background())
	for i := 0; i < 3; i++ {
		res := svc.Do(context.Background(), req)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.CacheHit {
			t.Fatal("keyless request hit the cache")
		}
	}
	if st := svc.Stats(); st.CacheHits != 0 || st.CacheSize != 0 {
		t.Fatalf("cache touched by keyless requests: %+v", st)
	}
}

// TestServiceCacheKeySeparatesExtraIntervals: requests differing only in
// caller-supplied extra candidate intervals must not share cache entries.
func TestServiceCacheKeySeparatesExtraIntervals(t *testing.T) {
	req, err := BuildRequest(testSpecs()[0])
	if err != nil {
		t.Fatal(err)
	}
	withExtra := req
	withExtra.Opts.Extra = []sched.Interval{{Proc: 0, Start: 0, End: 16}}
	if cacheKey(req) == cacheKey(withExtra) {
		t.Fatal("cache key ignores Opts.Extra")
	}
	svc := New(Config{Workers: 1})
	defer svc.Close(context.Background())
	if res := svc.Do(context.Background(), req); res.Err != nil {
		t.Fatal(res.Err)
	}
	res := svc.Do(context.Background(), withExtra)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.CacheHit {
		t.Fatal("request with extra intervals served from the plain request's cache entry")
	}
}

func TestServiceCacheEviction(t *testing.T) {
	svc := New(Config{Workers: 1, CacheSize: 2})
	defer svc.Close(context.Background())
	mk := func(jobs int) Request {
		req, err := BuildRequest(testSpec(1, 16, jobs, CostSpec{Model: "affine", Alpha: 1, Rate: 1}))
		if err != nil {
			t.Fatal(err)
		}
		return req
	}
	a, b, c := mk(1), mk(2), mk(3)
	for _, r := range []Request{a, b, c} { // c evicts a
		if res := svc.Do(context.Background(), r); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if res := svc.Do(context.Background(), a); res.Err != nil || res.CacheHit {
		t.Fatalf("evicted entry served from cache: %+v", res)
	}
	if st := svc.Stats(); st.CacheSize != 2 {
		t.Fatalf("cache size = %d, want 2", st.CacheSize)
	}
}

func TestServiceSubmitContextCancellation(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 1})
	defer svc.Close(context.Background())
	req, err := BuildRequest(testSpec(2, 16, 12, CostSpec{Model: "affine", Alpha: 2, Rate: 1}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Expired context: Submit must return promptly with ctx.Err, whether
	// it lost the race before or after enqueueing.
	if _, err := svc.Submit(ctx, req); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled or success", err)
	}
	// Live context still works.
	if _, err := svc.Submit(context.Background(), req); err != nil {
		t.Fatal(err)
	}
}

func TestServiceCloseDrainsAndRefuses(t *testing.T) {
	svc := New(Config{Workers: 2, QueueDepth: 8})
	req, err := BuildRequest(testSpecs()[1])
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	okOrClosed := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := svc.Submit(context.Background(), req)
			okOrClosed <- err
		}()
	}
	time.Sleep(5 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	close(okOrClosed)
	for err := range okOrClosed {
		if err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("in-flight submit: %v", err)
		}
	}
	if _, err := svc.Submit(context.Background(), req); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit err = %v, want ErrClosed", err)
	}
	// Close is idempotent.
	if err := svc.Close(context.Background()); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestServiceInfeasibleErrors(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close(context.Background())
	// Two jobs, one usable slot: unschedulable under ModeAll.
	spec := InstanceSpec{
		Procs: 1, Horizon: 2, Cost: CostSpec{Model: "affine", Alpha: 1, Rate: 1},
		Jobs: []JobSpec{
			{Allowed: []SlotSpec{{Proc: 0, Time: 0}}},
			{Allowed: []SlotSpec{{Proc: 0, Time: 0}}},
		},
	}
	req, err := BuildRequest(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(context.Background(), req); !errors.Is(err, sched.ErrUnschedulable) {
		t.Fatalf("err = %v, want ErrUnschedulable", err)
	}
	spec.Mode, spec.Z = "prize", 99
	req, err = BuildRequest(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(context.Background(), req); !errors.Is(err, sched.ErrValueUnreachable) {
		t.Fatalf("err = %v, want ErrValueUnreachable", err)
	}
	if st := svc.Stats(); st.Errors != 2 {
		t.Fatalf("errors = %d, want 2", st.Errors)
	}
}
