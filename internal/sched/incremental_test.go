package sched

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/power"
	"repro/internal/submodular"
)

// randomOracleInstance builds a small random scheduling instance for the
// oracle differential tests.
func randomOracleInstance(rng *rand.Rand) *Instance {
	procs := 1 + rng.Intn(3)
	horizon := 4 + rng.Intn(8)
	jobs := make([]Job, 1+rng.Intn(8))
	for j := range jobs {
		job := Job{Value: rng.Float64() * 10}
		if rng.Intn(4) == 0 {
			job.Value = float64(1 + rng.Intn(3)) // force value ties
		}
		for p := 0; p < procs; p++ {
			for t := 0; t < horizon; t++ {
				if rng.Intn(4) == 0 {
					job.Allowed = append(job.Allowed, SlotKey{Proc: p, Time: t})
				}
			}
		}
		if len(job.Allowed) == 0 {
			job.Allowed = append(job.Allowed, SlotKey{Proc: rng.Intn(procs), Time: rng.Intn(horizon)})
		}
		jobs[j] = job
	}
	return &Instance{
		Procs: procs, Horizon: horizon, Jobs: jobs,
		Cost: power.Affine{Alpha: 2, Rate: 1},
	}
}

// TestMatchingOraclesIncremental runs randomized Commit/Gain sequences on
// the matching utilities (Lemmas 2.2.2 and 2.3.2) and asserts the
// incremental oracles agree with their plain Eval counterparts to 1e-9.
func TestMatchingOraclesIncremental(t *testing.T) {
	const eps = 1e-9
	for trial := 0; trial < 150; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*2654435761 + 5))
		model, err := NewModel(randomOracleInstance(rng))
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range []struct {
			name string
			f    submodular.Function
		}{
			{"matching", model.MatchingUtility()},
			{"weighted-matching", model.WeightedUtility()},
		} {
			inc, ok := submodular.AsIncremental(tc.f)
			if !ok {
				t.Fatalf("%s: utility should provide an incremental oracle", tc.name)
			}
			n := tc.f.Universe()
			base := bitset.New(n)
			for step := 0; step < 6; step++ {
				var items []int
				for x := 0; x < n; x++ {
					if rng.Intn(3) == 0 {
						items = append(items, x)
					}
				}
				union := base.Clone()
				for _, x := range items {
					union.Add(x)
				}
				wantBase := tc.f.Eval(base)
				wantUnion := tc.f.Eval(union)
				if got := inc.Value(); math.Abs(got-wantBase) > eps {
					t.Fatalf("%s trial %d: Value = %g, want %g", tc.name, trial, got, wantBase)
				}
				if got := inc.Gain(items); math.Abs(got-(wantUnion-wantBase)) > eps {
					t.Fatalf("%s trial %d: Gain = %g, want %g", tc.name, trial, got, wantUnion-wantBase)
				}
				if !inc.Base().Equal(base) {
					t.Fatalf("%s trial %d: Gain mutated the base set", tc.name, trial)
				}
				if rng.Intn(2) == 0 {
					inc.Commit(items)
					base = union
					if got := inc.Value(); math.Abs(got-wantUnion) > eps {
						t.Fatalf("%s trial %d: post-Commit Value = %g, want %g", tc.name, trial, got, wantUnion)
					}
				}
			}
		}
	}
}

// TestPlainOracleMatchesIncremental checks that the from-scratch and
// incremental oracle paths produce identical schedules for both the
// schedule-all and prize-collecting greedy stacks.
func TestPlainOracleMatchesIncremental(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*7907 + 13))
		ins := randomOracleInstance(rng)

		inc, errInc := ScheduleAll(ins, Options{})
		plain, errPlain := ScheduleAll(ins, Options{PlainOracle: true})
		lazy, errLazy := ScheduleAll(ins, Options{Lazy: true})
		if (errInc == nil) != (errPlain == nil) || (errInc == nil) != (errLazy == nil) {
			t.Fatalf("trial %d: paths disagree on feasibility: inc=%v plain=%v lazy=%v",
				trial, errInc, errPlain, errLazy)
		}
		if errInc == nil {
			if math.Abs(inc.Cost-plain.Cost) > 1e-9 || math.Abs(inc.Cost-lazy.Cost) > 1e-9 {
				t.Fatalf("trial %d: costs diverge: inc %g plain %g lazy %g",
					trial, inc.Cost, plain.Cost, lazy.Cost)
			}
			if inc.Evals >= plain.Evals {
				t.Fatalf("trial %d: incremental path should issue fewer counted evals (%d vs %d)",
					trial, inc.Evals, plain.Evals)
			}
		}

		total := 0.0
		for _, j := range ins.Jobs {
			total += j.Value
		}
		z := 0.6 * total
		pInc, errInc := PrizeCollecting(ins, z, Options{Eps: 0.1})
		pPlain, errPlain := PrizeCollecting(ins, z, Options{Eps: 0.1, PlainOracle: true})
		if (errInc == nil) != (errPlain == nil) {
			t.Fatalf("trial %d: prize paths disagree on feasibility: inc=%v plain=%v", trial, errInc, errPlain)
		}
		if errInc == nil {
			if math.Abs(pInc.Cost-pPlain.Cost) > 1e-9 || math.Abs(pInc.Value-pPlain.Value) > 1e-9 {
				t.Fatalf("trial %d: prize schedules diverge: inc (%g, %g) plain (%g, %g)",
					trial, pInc.Cost, pInc.Value, pPlain.Cost, pPlain.Value)
			}
		}
	}
}
