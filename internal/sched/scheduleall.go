package sched

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/bitset"
	"repro/internal/budget"
)

// ScheduleAll schedules every job, minimizing total awake-interval cost
// (Theorem 2.2.1). If a feasible schedule of cost B exists, the returned
// schedule costs O(B log n). It returns ErrUnschedulable when even waking
// every usable slot cannot host all jobs.
func ScheduleAll(ins *Instance, opts Options) (*Schedule, error) {
	model, err := NewModel(ins)
	if err != nil {
		return nil, err
	}
	return model.ScheduleAll(opts)
}

// ScheduleAll runs Theorem 2.2.1's algorithm on the prebuilt model. Reusing
// one Model across calls on the same instance (as the serving layer's
// workers do for a batch) amortizes graph construction and the
// per-processor slot indexes. Solves reuse per-model scratch buffers
// (candidate enumeration and re-pricing), so a Model must not be shared
// between goroutines running concurrently — the contract it always had.
func (m *Model) ScheduleAll(opts Options) (*Schedule, error) {
	n := len(m.Ins.Jobs)
	if n == 0 {
		return &Schedule{Assignment: []SlotKey{}}, nil
	}
	if opts.Streaming && n >= opts.streamThreshold() {
		return m.scheduleAllStreaming(opts)
	}
	in, err := m.scheduleAllInput(opts)
	if err != nil {
		return nil, err
	}
	return m.scheduleAllExact(opts, in, 0)
}

// solveInput is the prepared greedy problem for one schedule-all run: the
// priced candidate intervals, the budget problem over them, and the
// resolved ε. Sessions build it once per (mutation-invalidated) solve and
// feed it to the warm-started stepwise greedy.
type solveInput struct {
	cands []candidate
	prob  budget.Problem
	eps   float64
}

// scheduleAllInput prices candidates, performs the Hall feasibility check
// over the coverable slots, and assembles Theorem 2.2.1's budget problem.
func (m *Model) scheduleAllInput(opts Options) (*solveInput, error) {
	n := len(m.Ins.Jobs)
	cands, err := m.buildCandidates(opts.Policy, opts.Extra)
	if err != nil {
		return nil, err
	}
	// Feasibility over the *coverable* slots: a slot counts only if some
	// finite-cost candidate interval contains it, so unavailability
	// (infinite-cost intervals) correctly shrinks the witness.
	coverable := coverableSlots(m, cands)
	if full := bipartite.MaxMatchingSize(m.G, coverable); full < n {
		jobs, slotIdx := bipartite.HallWitness(m.G, coverable)
		witness := &UnschedulableError{Matched: full, Jobs: jobs}
		for _, x := range slotIdx {
			witness.Slots = append(witness.Slots, m.Slots[x])
		}
		return nil, witness
	}
	eps := opts.Eps
	if eps <= 0 {
		// Theorem 2.2.1: ε = 1/(n+1) forces the integer utility to reach n.
		eps = 1 / float64(n+1)
	}
	return &solveInput{
		cands: cands,
		prob: budget.Problem{
			F:         matchFn{m},
			Subsets:   budgetSubsets(cands),
			Threshold: float64(n),
		},
		eps: eps,
	}, nil
}

// finishScheduleAll extracts the schedule from a completed greedy run.
func (m *Model) finishScheduleAll(opts Options, in *solveInput, res *budget.Result) (*Schedule, error) {
	n := len(m.Ins.Jobs)
	sched := extractUnweighted(m, res.Union.Elements(), chosenIntervals(in.cands, res.Chosen))
	sched.Evals = res.Evals
	if sched.Scheduled < n && opts.Eps <= 0 {
		// With the default ε this is impossible (utility is integral);
		// guard against arithmetic drift anyway.
		return nil, fmt.Errorf("%w: greedy stopped at %d of %d", ErrUnschedulable, sched.Scheduled, n)
	}
	return sched, nil
}

// chosenIntervals maps picked candidate indices back to intervals.
func chosenIntervals(cands []candidate, idx []int) []Interval {
	out := make([]Interval, len(idx))
	for i, c := range idx {
		out[i] = cands[c].iv
	}
	return out
}

// extractUnweighted runs a final maximum matching over the awake slots and
// converts it into a Schedule.
func extractUnweighted(model *Model, awake []int, intervals []Interval) *Schedule {
	enabled := enabledSet(model, awake)
	_, _, matchY := bipartite.MaxMatching(model.G, enabled)
	return buildSchedule(model, matchY, intervals)
}

// extractWeighted runs a final maximum-value matching over the awake slots.
func extractWeighted(model *Model, awake []int, intervals []Interval) *Schedule {
	enabled := enabledSet(model, awake)
	_, _, matchY := bipartite.WeightedValue(model.G, model.Values, model.Order, enabled)
	return buildSchedule(model, matchY, intervals)
}

func enabledSet(model *Model, awake []int) *bitset.Set {
	s := bitset.New(len(model.Slots))
	for _, x := range awake {
		s.Add(x)
	}
	return s
}

// coverableSlots returns the union of all finite-cost candidates' slots.
func coverableSlots(model *Model, cands []candidate) *bitset.Set {
	s := bitset.New(len(model.Slots))
	for _, c := range cands {
		for _, x := range c.items {
			s.Add(x)
		}
	}
	return s
}

func buildSchedule(model *Model, matchY []int32, intervals []Interval) *Schedule {
	assignment := make([]SlotKey, len(model.Ins.Jobs))
	value := 0.0
	scheduled := 0
	for j := range assignment {
		if x := matchY[j]; x >= 0 {
			assignment[j] = model.Slots[x]
			value += model.Values[j]
			scheduled++
		} else {
			assignment[j] = Unassigned
		}
	}
	cost := 0.0
	for _, iv := range intervals {
		cost += model.Ins.Cost.Cost(iv.Proc, iv.Start, iv.End)
	}
	return &Schedule{
		Intervals: intervals, Assignment: assignment,
		Cost: cost, Value: value, Scheduled: scheduled,
	}
}
