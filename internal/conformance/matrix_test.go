package conformance

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/workload"
)

// matrixProcs/matrixHorizon are the shared instance dimensions every row
// is built for.
const (
	matrixProcs   = 2
	matrixHorizon = 24
)

// modelRow is one cost model in the scenario matrix. Adding a model to
// the codebase means adding a row here — every checker in the package
// runs against it, so no new test file is needed.
type modelRow struct {
	name     string
	monotone bool // interval monotonicity is part of the model's contract
	build    func(rng *rand.Rand) power.CostModel
}

// matrix lists every bundled cost model: the four originals plus the
// scenario-matrix additions (speed scaling, sleep states, the composite
// stack) and the Unavailable wrapper over a priced-horizon base — the
// frozen-mask-inside-a-session interplay the session script exercises.
func matrix() []modelRow {
	return []modelRow{
		{"affine", true, func(*rand.Rand) power.CostModel {
			return power.Affine{Alpha: 4, Rate: 1}
		}},
		{"perproc", true, func(*rand.Rand) power.CostModel {
			return power.NewPerProcessor([]float64{3, 5}, []float64{1, 0.5})
		}},
		{"timeofuse", true, func(rng *rand.Rand) power.CostModel {
			return power.NewTimeOfUse([]float64{4, 2}, []float64{1, 1.5},
				workload.MarketTrace(rng, matrixHorizon))
		}},
		{"superlinear", true, func(*rand.Rand) power.CostModel {
			return power.Superlinear{Alpha: 3, Rate: 1, Fan: 0.05, Exp: 1.7}
		}},
		{"speedscaled", true, func(*rand.Rand) power.CostModel {
			return power.NewSpeedScaled([]float64{4, 4}, []float64{1, 1.6}, 3)
		}},
		{"sleepstate", true, func(*rand.Rand) power.CostModel {
			return power.NewSleepState(6, 1, 0.4)
		}},
		{"composite", true, func(rng *rand.Rand) power.CostModel {
			c := power.NewComposite([]float64{4, 2}, []float64{1, 1.4}, 2,
				workload.MarketTrace(rng, matrixHorizon))
			c.Block(0, 3)
			c.Block(1, 17)
			return c.Freeze()
		}},
		{"unavailable(timeofuse)", true, func(rng *rand.Rand) power.CostModel {
			base := power.NewTimeOfUse([]float64{4, 2}, []float64{1, 1.5},
				workload.MarketTrace(rng, matrixHorizon))
			u := power.NewUnavailable(base, matrixHorizon)
			u.Block(0, 5)
			u.Block(1, 11)
			return u.Freeze()
		}},
	}
}

// matrixInstance plants a feasible-by-construction workload priced by the
// row's model. Decoy slots give the solver room when the row's mask
// blocks a planted slot; if a mask still kills feasibility the checkers
// verify that every path agrees on the failure.
func matrixInstance(rng *rand.Rand, cost power.CostModel) *sched.Instance {
	ins, _ := workload.PlantedSchedule(rng, workload.PlantedParams{
		Procs: matrixProcs, Horizon: matrixHorizon,
		IntervalsPerProc: 2, JobsPerInterval: 3,
		ExtraSlotsPerJob: 2, ValueSpread: 3,
		Cost: cost,
	})
	return ins
}

// sessionScript is the canonical mutation script every row's session is
// driven through: adds, a mask, horizon growth (past the priced horizon
// for bounded models — new slots price +Inf and must prune, not crash),
// removals, and rejected mutations that must leave the session intact.
func sessionScript() []Mutation {
	job := func(slots ...sched.SlotKey) sched.Job {
		return sched.Job{Value: 1, Allowed: slots}
	}
	return []Mutation{
		{Op: OpAddJob, Job: job(
			sched.SlotKey{Proc: 0, Time: 2}, sched.SlotKey{Proc: 1, Time: 5}, sched.SlotKey{Proc: 0, Time: 7})},
		{Op: OpBlock, Proc: 1, Time: 3},
		{Op: OpAdvance, Horizon: matrixHorizon + 4},
		{Op: OpAddJob, Job: job(
			sched.SlotKey{Proc: 1, Time: 9}, sched.SlotKey{Proc: 0, Time: 14})},
		{Op: OpRemoveJob, Index: 0},
		{Op: OpRemoveJob, Index: 999}, // rejected: no such job
		{Op: OpAdvance, Horizon: 2},   // rejected: horizons only grow
		{Op: OpBlock, Proc: 0, Time: 0},
		{Op: OpAddJob, Job: job(sched.SlotKey{Proc: 0, Time: 1})},
	}
}

// TestMatrix runs every cost model — existing and new — through the full
// conformance suite from one table. This is the acceptance gate the
// scenario matrix hangs off: contract checks, incremental==plain picks,
// Workers ∈ {1,2,4,8} invariance, and session warm-solve byte-identical
// to cold across the mutation script.
func TestMatrix(t *testing.T) {
	for _, row := range matrix() {
		t.Run(row.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			model := row.build(rng)
			if err := CheckCostModel(model, matrixProcs, matrixHorizon); err != nil {
				t.Fatal(err)
			}
			if row.monotone {
				if err := CheckMonotone(model, matrixProcs, matrixHorizon); err != nil {
					t.Fatal(err)
				}
			}
			if err := CheckConcurrent(model, matrixProcs, matrixHorizon); err != nil {
				t.Fatal(err)
			}
			ins := matrixInstance(rng, model)
			if err := CheckSolve(ins, sched.Options{}); err != nil {
				t.Fatal(err)
			}
			if err := CheckSession(ins, sched.Options{}, sessionScript()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMatrixCoversEveryBundledModel pins the matrix against the power
// package's surface: forgetting to add a row for a new model is a test
// failure here, not a silent coverage gap.
func TestMatrixCoversEveryBundledModel(t *testing.T) {
	want := []string{"affine", "perproc", "timeofuse", "superlinear",
		"speedscaled", "sleepstate", "composite"}
	have := map[string]bool{}
	for _, row := range matrix() {
		have[row.name] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Fatalf("matrix is missing bundled model %q", name)
		}
	}
}

// TestCheckersRejectViolations proves the checkers detect what they claim
// to: a panicking model, a NaN model, and a non-monotone model must all
// be flagged — otherwise a green matrix means nothing.
func TestCheckersRejectViolations(t *testing.T) {
	panicky := power.Func(func(proc, start, end int) float64 {
		if proc < 0 {
			panic("negative proc")
		}
		return 1
	})
	if err := CheckCostModel(panicky, matrixProcs, matrixHorizon); err == nil {
		t.Fatal("panicking model passed CheckCostModel")
	}
	nan := power.Func(func(proc, start, end int) float64 {
		if start > end {
			return math.NaN()
		}
		return 1
	})
	if err := CheckCostModel(nan, matrixProcs, matrixHorizon); err == nil {
		t.Fatal("NaN model passed CheckCostModel")
	}
	shrinking := power.Func(func(proc, start, end int) float64 {
		return 100 - float64(end-start)
	})
	if err := CheckMonotone(shrinking, matrixProcs, matrixHorizon); err == nil {
		t.Fatal("shrinking model passed CheckMonotone")
	}
}
