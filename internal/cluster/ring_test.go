package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("s%06d", i+1)
	}
	return keys
}

func testBackends(n int) []string {
	bs := make([]string, n)
	for i := range bs {
		bs[i] = fmt.Sprintf("http://127.0.0.1:%d", 9001+i)
	}
	return bs
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Fatal("empty backend list must be rejected")
	}
	if _, err := NewRing([]string{"a", ""}); err == nil {
		t.Fatal("empty backend name must be rejected")
	}
	r, err := NewRing([]string{"a", "b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if r.N() != 2 {
		t.Fatalf("duplicates must collapse: N=%d, want 2", r.N())
	}
}

func TestRingPureFunctionOfSet(t *testing.T) {
	bs := testBackends(5)
	r1, err := NewRing(bs)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := append([]string(nil), bs...)
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	r2, err := NewRing(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(200) {
		if r1.Lookup(k) != r2.Lookup(k) {
			t.Fatalf("lookup of %q differs across insertion orders", k)
		}
	}
}

func TestSequenceCoversAllBackendsOnce(t *testing.T) {
	r, err := NewRing(testBackends(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(50) {
		seq := r.Sequence(k)
		if len(seq) != r.N() {
			t.Fatalf("sequence for %q has %d entries, want %d", k, len(seq), r.N())
		}
		if seq[0] != r.Lookup(k) {
			t.Fatalf("sequence head %q != owner %q", seq[0], r.Lookup(k))
		}
		seen := map[string]bool{}
		for _, b := range seq {
			if seen[b] {
				t.Fatalf("sequence for %q repeats %q", k, b)
			}
			seen[b] = true
			if !r.Contains(b) {
				t.Fatalf("sequence names unknown backend %q", b)
			}
		}
	}
}

func TestLookupAliveMatchesShrunkRing(t *testing.T) {
	// Failover must land exactly where a resize would: skipping a dead
	// backend is the same function as removing it from the ring.
	bs := testBackends(5)
	big, err := NewRing(bs)
	if err != nil {
		t.Fatal(err)
	}
	for dead := 0; dead < len(bs); dead++ {
		var rest []string
		for i, b := range bs {
			if i != dead {
				rest = append(rest, b)
			}
		}
		small, err := NewRing(rest)
		if err != nil {
			t.Fatal(err)
		}
		alive := func(b string) bool { return b != bs[dead] }
		for _, k := range testKeys(100) {
			got, ok := big.LookupAlive(k, alive)
			if !ok {
				t.Fatalf("no alive backend for %q", k)
			}
			if want := small.Lookup(k); got != want {
				t.Fatalf("failover owner %q != shrunk-ring owner %q for %q", got, want, k)
			}
		}
	}
	if _, ok := big.LookupAlive("k", func(string) bool { return false }); ok {
		t.Fatal("LookupAlive with nothing alive must report false")
	}
}

func TestAssignBalancedAndDeterministic(t *testing.T) {
	r, err := NewRing(testBackends(4))
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(103)
	a1 := r.Assign(keys)
	shuffled := append([]string(nil), keys...)
	rand.New(rand.NewSource(3)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	a2 := r.Assign(shuffled)
	if len(a1) != len(keys) {
		t.Fatalf("assigned %d keys, want %d", len(a1), len(keys))
	}
	loads := map[string]int{}
	for k, b := range a1 {
		if a2[k] != b {
			t.Fatalf("assignment of %q differs across input orders", k)
		}
		if !r.Contains(b) {
			t.Fatalf("key %q assigned to unknown backend %q", k, b)
		}
		loads[b]++
	}
	cap := (len(keys) + r.N() - 1) / r.N()
	for b, l := range loads {
		if l > cap {
			t.Fatalf("backend %q owns %d keys, cap %d", b, l, cap)
		}
	}
}

func moved(prev, next map[string]string) int {
	n := 0
	for k, b := range prev {
		if nb, ok := next[k]; ok && nb != b {
			n++
		}
	}
	return n
}

func TestRebalanceGrowBound(t *testing.T) {
	keys := testKeys(100)
	for n := 1; n <= 6; n++ {
		r1, _ := NewRing(testBackends(n))
		prev := r1.Assign(keys)
		r2, _ := NewRing(testBackends(n + 1))
		next := r2.Rebalance(prev, keys)
		bound := (len(keys) + r2.N() - 1) / r2.N()
		if m := moved(prev, next); m > bound {
			t.Fatalf("grow %d→%d moved %d keys, bound %d", n, n+1, m, bound)
		}
		// The new backend must actually take load: growth that moves
		// nothing would leave the cluster permanently unbalanced.
		newName := testBackends(n + 1)[n]
		got := 0
		for _, b := range next {
			if b == newName {
				got++
			}
		}
		if got == 0 {
			t.Fatalf("grow %d→%d gave the new backend no keys", n, n+1)
		}
	}
}

func TestRebalanceShrinkBound(t *testing.T) {
	keys := testKeys(100)
	for n := 2; n <= 6; n++ {
		bs := testBackends(n)
		r1, _ := NewRing(bs)
		prev := r1.Assign(keys)
		for dead := 0; dead < n; dead++ {
			var rest []string
			for i, b := range bs {
				if i != dead {
					rest = append(rest, b)
				}
			}
			r2, _ := NewRing(rest)
			next := r2.Rebalance(prev, keys)
			bound := (len(keys) + r2.N() - 1) / r2.N()
			if m := moved(prev, next); m > bound {
				t.Fatalf("shrink %d→%d (dead %d) moved %d keys, bound %d", n, n-1, dead, m, bound)
			}
			for k, b := range next {
				if b == bs[dead] {
					t.Fatalf("key %q still assigned to removed backend", k)
				}
			}
		}
	}
}

func TestRebalanceConvergesToBalance(t *testing.T) {
	// From a pathological prev (everything on one backend), repeated
	// Rebalance calls move at most ⌈K/N⌉ keys per round and reach a
	// balanced assignment.
	r, _ := NewRing(testBackends(4))
	keys := testKeys(40)
	prev := map[string]string{}
	for _, k := range keys {
		prev[k] = r.Backends()[0]
	}
	cap := (len(keys) + r.N() - 1) / r.N()
	for round := 0; round < 10; round++ {
		next := r.Rebalance(prev, keys)
		if m := moved(prev, next); m > cap {
			t.Fatalf("round %d moved %d keys, budget %d", round, m, cap)
		}
		prev = next
		loads := map[string]int{}
		for _, b := range prev {
			loads[b]++
		}
		maxLoad := 0
		for _, l := range loads {
			if l > maxLoad {
				maxLoad = l
			}
		}
		if maxLoad <= cap {
			return // balanced
		}
	}
	t.Fatal("rebalance did not converge to balance within 10 rounds")
}

func TestRebalanceDropsUnknownKeys(t *testing.T) {
	r, _ := NewRing(testBackends(2))
	prev := r.Assign(testKeys(10))
	next := r.Rebalance(prev, testKeys(5))
	if len(next) != 5 {
		t.Fatalf("rebalance kept %d keys, want the 5 requested", len(next))
	}
}

func TestAssignEmptyAndSingle(t *testing.T) {
	r, _ := NewRing(testBackends(3))
	if got := r.Assign(nil); len(got) != 0 {
		t.Fatalf("empty key set assigned %d keys", len(got))
	}
	one := r.Assign([]string{"only"})
	if len(one) != 1 || !r.Contains(one["only"]) {
		t.Fatalf("single-key assignment broken: %v", one)
	}
	if one["only"] != r.Lookup("only") {
		t.Fatalf("single key should land on its hash owner")
	}
}

// TestLookupScattersSequentialKeys is the regression test for the
// hash64 finalizer. Router-minted session ids are sequential
// ("c<epoch>-000001", "c<epoch>-000002", ...), and bare FNV-1a maps a
// last-byte delta to a hash delta of ~delta·prime — far below a vnode
// interval — so without the avalanche finalizer every minted id lands
// on the same backend.
func TestLookupScattersSequentialKeys(t *testing.T) {
	r, err := NewRing(testBackends(3))
	if err != nil {
		t.Fatal(err)
	}
	const K = 60
	loads := map[string]int{}
	for i := 1; i <= K; i++ {
		loads[r.Lookup(fmt.Sprintf("c1786090144-%06d", i))]++
	}
	if len(loads) < 2 {
		t.Fatalf("all %d sequential ids landed on one backend: %v", K, loads)
	}
	for b, n := range loads {
		if n > K/2 {
			t.Fatalf("backend %s owns %d of %d sequential ids: %v", b, n, K, loads)
		}
	}
}
