package budget

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/bitset"
	"repro/internal/submodular"
)

// FuzzSieveStreaming decodes arbitrary bytes into a small coverage
// instance with integer costs and checks the sieve's whole contract on
// it: no panics, feasibility, the (1/2−ε) guarantee against the exact
// greedy on uniform costs (best-feasible-singleton on non-uniform), the
// bounded-memory claim (MaxLive ≤ LevelsPeak·(⌊B/min-cost⌋+1)), full
// determinism, worker-count invariance, and batch/streaming agreement.
//
// The byte layout is positional so corpus entries stay readable:
// data[0] elements, data[1] sets, data[2] budget, data[3] uniform flag,
// data[4] eps step; the tail drives set membership bits and, when
// non-uniform, per-set costs.
func FuzzSieveStreaming(f *testing.F) {
	f.Add([]byte{20, 15, 3, 0, 5, 0xa5, 0x5a, 0xff, 0x00, 0x3c, 0xc3, 0x0f, 0xf0})
	f.Add([]byte{31, 40, 7, 1, 12, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{6, 3, 1, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		at := func(i int) byte {
			if i < len(data) {
				return data[i]
			}
			return 0
		}
		m := 4 + int(at(0))%29     // elements
		nSets := 1 + int(at(1))%40 // stream length
		budget := 1 + int(at(2))%8 // integer budget
		uniform := at(3)%2 == 0    // unit vs small integer costs
		eps := 0.05 + float64(at(4)%20)*0.01

		// The tail is a bit stream for memberships and a byte stream for
		// costs; exhausting it wraps around (always ≥ 1 byte via at).
		bitPos := 0
		nextBit := func() bool {
			i := 5 + bitPos/8
			b := at(i % max(len(data), 6))
			v := b>>(bitPos%8)&1 == 1
			bitPos++
			return v
		}
		bs := make([]*bitset.Set, nSets)
		subs := make([]Subset, nSets)
		minCost := math.Inf(1)
		for i := 0; i < nSets; i++ {
			var elems []int
			for e := 0; e < m; e++ {
				if nextBit() {
					elems = append(elems, e)
				}
			}
			bs[i] = bitset.FromSlice(m, elems)
			cost := 1.0
			if !uniform {
				cost = 1 + float64(at(5+nSets+i)%4)
			}
			if cost < minCost {
				minCost = cost
			}
			subs[i] = Subset{Elems: []int{i}, Cost: cost}
		}
		fn := submodular.NewCoverage(m, bs, nil)
		opts := SieveOptions{Eps: eps, Budget: float64(budget)}

		res, err := RunSieve(fn, subs, opts)
		if err != nil {
			t.Fatalf("valid instance rejected: %v", err)
		}

		// Feasibility: within budget, chosen indices valid and unique.
		if res.Cost > float64(budget)+tol {
			t.Fatalf("cost %g exceeds budget %d", res.Cost, budget)
		}
		seen := map[int]bool{}
		for _, i := range res.Chosen {
			if i < 0 || i >= nSets || seen[i] {
				t.Fatalf("invalid or duplicate pick %d in %v", i, res.Chosen)
			}
			seen[i] = true
		}

		// Bounded live candidate slots: each level holds at most
		// ⌊B/min-cost⌋ paid picks plus the freeze-step one.
		if nSets > 0 && !math.IsInf(minCost, 1) {
			bound := res.LevelsPeak * (int(float64(budget)/minCost) + 1)
			if res.MaxLive > bound {
				t.Fatalf("MaxLive %d exceeds LevelsPeak*(B/minc+1) = %d", res.MaxLive, bound)
			}
		}

		// Guarantee: (1/2−ε)·greedy on uniform costs, best feasible
		// singleton otherwise.
		if uniform {
			if !res.Uniform && nSets > 0 {
				t.Fatal("unit costs reported non-uniform")
			}
			ref := refBudgetedUtility(fn, subs, float64(budget), 0)
			if res.Utility < (0.5-eps)*ref-tol {
				t.Fatalf("utility %g < (1/2-eps)*greedy %g", res.Utility, ref)
			}
		} else {
			var bestSingle float64
			scratch := bitset.New(fn.Universe())
			for i := range subs {
				if subs[i].Cost > float64(budget) {
					continue
				}
				scratch.Clear()
				subs[i].unionInto(scratch)
				if v := fn.Eval(scratch); v > bestSingle {
					bestSingle = v
				}
			}
			if res.Utility < bestSingle-tol {
				t.Fatalf("utility %g below best feasible singleton %g", res.Utility, bestSingle)
			}
		}

		// Determinism and worker-count invariance.
		again, err := RunSieve(fn, subs, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again.Chosen, res.Chosen) || again.Utility != res.Utility || again.Cost != res.Cost {
			t.Fatalf("nondeterministic: (%v,%g,%g) then (%v,%g,%g)",
				res.Chosen, res.Utility, res.Cost, again.Chosen, again.Utility, again.Cost)
		}
		w4 := opts
		w4.Workers = 4
		par, err := RunSieve(fn, subs, w4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par.Chosen, res.Chosen) || par.Utility != res.Utility || par.Cost != res.Cost {
			t.Fatalf("W=4 diverged: (%v,%g,%g) vs serial (%v,%g,%g)",
				par.Chosen, par.Utility, par.Cost, res.Chosen, res.Utility, res.Cost)
		}

		// Streaming Offer/Finish picks the same solution as the batch.
		sv, err := NewSieve(fn, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range subs {
			if err := sv.Offer(subs[i]); err != nil {
				t.Fatal(err)
			}
		}
		stream, err := sv.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stream.Chosen, res.Chosen) || stream.Utility != res.Utility {
			t.Fatalf("streaming (%v,%g) != batch (%v,%g)",
				stream.Chosen, stream.Utility, res.Chosen, res.Utility)
		}
	})
}
