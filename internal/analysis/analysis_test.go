package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// writePkg materializes a tiny single-file package and returns its dir.
func writePkg(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// A test file proves LoadDir skips _test.go (it would not compile).
	if err := os.WriteFile(filepath.Join(dir, "p_test.go"), []byte("package p\nbroken{"), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

const src = `package p

import "fmt"

func Greet() {
	fmt.Println("hi") // the analyzer below reports every fmt call
}

func Quiet() int {
	//powersched:test-marker because the fixture says so
	return 1 + 1
}
`

func load(t *testing.T) *analysis.Package {
	t.Helper()
	pkg, err := analysis.NewLoader().LoadDir(writePkg(t, src), "example/p")
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func TestRunAndDiagnosticFormat(t *testing.T) {
	calls := &analysis.Analyzer{
		Name: "fmtcall",
		Doc:  "reports fmt calls",
		Run: func(pass *analysis.Pass) error {
			if pass.Pkg.Path() != "example/p" {
				t.Errorf("Pkg.Path() = %q", pass.Pkg.Path())
			}
			for _, f := range pass.Files {
				for _, imp := range f.Imports {
					if strings.Trim(imp.Path.Value, `"`) == "fmt" {
						pass.Reportf(imp.Pos(), "fmt imported")
					}
				}
			}
			return nil
		},
	}
	diags, err := analysis.Run(load(t), []*analysis.Analyzer{calls})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	got := diags[0].String()
	if !strings.Contains(got, "p.go:3:8") || !strings.Contains(got, "[fmtcall] fmt imported") {
		t.Errorf("diagnostic format = %q", got)
	}
}

func TestAnnotationLookup(t *testing.T) {
	pkg := load(t)
	var reported []string
	probe := &analysis.Analyzer{
		Name: "probe",
		Doc:  "reads annotations",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					reason, ok := analysis.Annotation(pass.Fset, f, d.Pos(), "test-marker")
					if ok {
						reported = append(reported, reason)
					}
				}
			}
			return nil
		},
	}
	if _, err := analysis.Run(pkg, []*analysis.Analyzer{probe}); err != nil {
		t.Fatal(err)
	}
	// No declaration sits on or directly under the marker line, so the
	// decl-position probe finds nothing; the statement-level probe in the
	// analyzer suites exercises the hit path. Here the miss path suffices
	// plus FileOf coverage below.
	if len(reported) != 0 {
		t.Errorf("unexpected annotation hits: %v", reported)
	}
}

func TestAnnotationOnStatement(t *testing.T) {
	pkg := load(t)
	found := false
	probe := &analysis.Analyzer{
		Name: "probe",
		Doc:  "reads statement annotations",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				for _, cg := range f.Comments {
					if reason, ok := analysis.CommentHasMarker(cg, "test-marker"); ok {
						found = true
						if reason != "because the fixture says so" {
							t.Errorf("reason = %q", reason)
						}
					}
				}
			}
			return nil
		},
	}
	if _, err := analysis.Run(pkg, []*analysis.Analyzer{probe}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Error("CommentHasMarker never matched the fixture marker")
	}
}
