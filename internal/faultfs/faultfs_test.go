package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	var fsys FS = OS{}
	if err := fsys.MkdirAll(filepath.Join(dir, "a/b"), 0o755); err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(dir, "a/b/x.txt")
	f, err := fsys.OpenFile(name, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Rename(name, name+".2"); err != nil {
		t.Fatal(err)
	}
	data, err := fsys.ReadFile(name + ".2")
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	ents, err := fsys.ReadDir(filepath.Join(dir, "a/b"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := fsys.Remove(name + ".2"); err != nil {
		t.Fatal(err)
	}
}

// TestFaultWrite: the Nth write fails with ENOSPC by default; Partial
// tears the record, leaving a prefix on disk.
func TestFaultWrite(t *testing.T) {
	dir := t.TempDir()
	fault := New(OS{}, Plan{FailWrite: 2, Partial: 3})
	name := filepath.Join(dir, "j")
	f, err := fault.OpenFile(name, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("first\n")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	n, err := f.Write([]byte("second\n"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write 2 err = %v, want ENOSPC", err)
	}
	if n != 3 {
		t.Fatalf("torn write persisted %d bytes, want 3", n)
	}
	f.Close()
	data, _ := os.ReadFile(name)
	if string(data) != "first\nsec" {
		t.Fatalf("on-disk bytes %q, want torn prefix", data)
	}
	if w, _, _, _ := fault.Counts(); w != 2 {
		t.Fatalf("write count %d, want 2", w)
	}
}

func TestFaultSyncRenameOpen(t *testing.T) {
	dir := t.TempDir()
	custom := errors.New("boom")
	fault := New(OS{}, Plan{FailSync: 1, Err: custom})
	f, err := fault.OpenFile(filepath.Join(dir, "s"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, custom) {
		t.Fatalf("sync err = %v, want custom", err)
	}
	f.Close()

	fault.SetPlan(Plan{FailRename: 1})
	if err := fault.Rename(filepath.Join(dir, "s"), filepath.Join(dir, "t")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("rename err = %v, want ENOSPC", err)
	}
	// Counter reset by SetPlan: the next rename passes.
	fault.SetPlan(Plan{FailRename: 2})
	if err := fault.Rename(filepath.Join(dir, "s"), filepath.Join(dir, "t")); err != nil {
		t.Fatalf("unfaulted rename: %v", err)
	}

	fault.SetPlan(Plan{FailOpen: 1})
	if _, err := fault.OpenFile(filepath.Join(dir, "u"), os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("open err = %v, want ENOSPC", err)
	}
}
