package netfault

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// newBackend returns a test server counting requests and its transport
// wrapped with plan.
func newBackend(t *testing.T, plan Plan) (*httptest.Server, *Transport, *atomic.Int64) {
	t.Helper()
	var served atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		io.WriteString(w, "0123456789") //nolint:errcheck
	}))
	t.Cleanup(srv.Close)
	return srv, NewTransport(nil, plan), &served
}

func get(t *testing.T, tr *Transport, url string) (string, error) {
	t.Helper()
	client := &http.Client{Transport: tr}
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

func TestZeroPlanForwards(t *testing.T) {
	srv, tr, served := newBackend(t, Plan{})
	body, err := get(t, tr, srv.URL)
	if err != nil || body != "0123456789" {
		t.Fatalf("clean request: body %q err %v", body, err)
	}
	if served.Load() != 1 {
		t.Fatalf("served %d requests, want 1", served.Load())
	}
	if tr.Trips() != 1 {
		t.Fatalf("trips %d, want 1", tr.Trips())
	}
}

func TestFailRoundTripNeverReachesBackend(t *testing.T) {
	srv, tr, served := newBackend(t, Plan{FailRoundTrip: 2})
	if _, err := get(t, tr, srv.URL); err != nil {
		t.Fatalf("first request should pass: %v", err)
	}
	if _, err := get(t, tr, srv.URL); err == nil || !strings.Contains(err.Error(), ErrInjected.Error()) {
		t.Fatalf("second request: want injected failure, got %v", err)
	}
	if served.Load() != 1 {
		t.Fatalf("backend served %d, want 1 (failed trip must not arrive)", served.Load())
	}
	if _, err := get(t, tr, srv.URL); err != nil {
		t.Fatalf("third request should pass: %v", err)
	}
}

func TestDropReplyReachesBackend(t *testing.T) {
	srv, tr, served := newBackend(t, Plan{DropReply: 1})
	if _, err := get(t, tr, srv.URL); err == nil {
		t.Fatal("dropped reply must surface as an error")
	}
	if served.Load() != 1 {
		t.Fatalf("backend served %d, want 1 (drop-reply delivers the request)", served.Load())
	}
}

func TestPartialBodyTruncates(t *testing.T) {
	srv, tr, _ := newBackend(t, Plan{PartialBody: 1, Partial: 4})
	body, err := get(t, tr, srv.URL)
	if err == nil {
		t.Fatalf("partial body must end in an error, got full %q", body)
	}
	if body != "0123" {
		t.Fatalf("got %q before the cut, want %q", body, "0123")
	}
}

func TestPartialBodyPassesShortResponses(t *testing.T) {
	// A response shorter than the cut point reads to clean EOF.
	srv, tr, _ := newBackend(t, Plan{PartialBody: 1, Partial: 64})
	body, err := get(t, tr, srv.URL)
	if err != nil || body != "0123456789" {
		t.Fatalf("short response through wide cut: body %q err %v", body, err)
	}
}

func TestLatencyDelaysAndHonorsContext(t *testing.T) {
	srv, tr, served := newBackend(t, Plan{Latency: 50 * time.Millisecond})
	start := time.Now()
	if _, err := get(t, tr, srv.URL); err != nil {
		t.Fatalf("delayed request failed: %v", err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("request took %v, want >= 50ms", d)
	}
	// A deadline shorter than the latency must cancel before dispatch.
	client := &http.Client{Transport: tr, Timeout: 5 * time.Millisecond}
	before := served.Load()
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("sub-latency deadline should fail the request")
	}
	if served.Load() != before {
		t.Fatal("timed-out request must not reach the backend")
	}
}

func TestLatencyNConfinesDelay(t *testing.T) {
	srv, tr, _ := newBackend(t, Plan{Latency: 40 * time.Millisecond, LatencyN: 2})
	start := time.Now()
	if _, err := get(t, tr, srv.URL); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 30*time.Millisecond {
		t.Fatalf("first request delayed %v, plan targets only the second", d)
	}
	start = time.Now()
	if _, err := get(t, tr, srv.URL); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("second request took %v, want >= 40ms", d)
	}
}

func TestSetPlanResetsCounter(t *testing.T) {
	srv, tr, _ := newBackend(t, Plan{FailRoundTrip: 1})
	if _, err := get(t, tr, srv.URL); err == nil {
		t.Fatal("first trip should fail")
	}
	tr.SetPlan(Plan{FailRoundTrip: 1})
	if _, err := get(t, tr, srv.URL); err == nil {
		t.Fatal("re-armed first trip should fail again")
	}
	tr.SetPlan(Plan{})
	if _, err := get(t, tr, srv.URL); err != nil {
		t.Fatalf("cleared plan should pass: %v", err)
	}
}

func TestCustomErr(t *testing.T) {
	sentinel := errors.New("boom")
	srv, tr, _ := newBackend(t, Plan{FailRoundTrip: 1, Err: sentinel})
	_, err := get(t, tr, srv.URL)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want custom error, got %v", err)
	}
}

func TestListenerDropAccept(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := NewListener(inner, ListenerPlan{DropAccept: 1})
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok") //nolint:errcheck
	})}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()

	// Disable keep-alives so each request opens a fresh connection and
	// the Nth-accept accounting is exact.
	client := &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   2 * time.Second,
	}
	url := "http://" + inner.Addr().String()
	if _, err := client.Get(url); err == nil {
		t.Fatal("first connection should be dropped")
	}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("second connection should pass: %v", err)
	}
	resp.Body.Close()
}

func TestListenerRefuseAllThenRecover(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := NewListener(inner, ListenerPlan{RefuseAll: true})
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok") //nolint:errcheck
	})}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()

	client := &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   2 * time.Second,
	}
	url := "http://" + inner.Addr().String()
	if _, err := client.Get(url); err == nil {
		t.Fatal("refused connection should fail")
	}
	ln.SetPlan(ListenerPlan{})
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("recovered listener should serve: %v", err)
	}
	resp.Body.Close()
}
