// Package stats provides the small statistical toolkit used by the
// experiment harness: summary statistics with confidence intervals and
// markdown table rendering.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Summary holds the usual moments of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	sum := 0.0
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval for the mean.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Stddev / math.Sqrt(float64(s.N))
}

// Mean returns the arithmetic mean of xs (0 for empty).
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// Median returns the median of xs (0 for empty).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	m := len(c) / 2
	if len(c)%2 == 1 {
		return c[m]
	}
	return (c[m-1] + c[m]) / 2
}

// Quantile returns the q-quantile (0 <= q <= 1) using nearest-rank on the
// sorted sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	i := int(math.Ceil(q*float64(len(c)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(c) {
		i = len(c) - 1
	}
	return c[i]
}

// Table is a simple column-oriented results table rendered as markdown.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, Columns: cols}
}

// AddRow appends a row; cells are formatted with %v unless already strings.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: integers without decimals, small
// magnitudes with 4 significant decimals, otherwise 2.
func FormatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) < 1:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// WriteTo renders the table as GitHub-flavored markdown.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i := range t.Columns {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, " %-*s |", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	b.WriteString("|")
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		writeRow(r)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "\n%s\n", t.Note)
	}
	b.WriteString("\n")
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table as markdown.
func (t *Table) String() string {
	var b strings.Builder
	t.WriteTo(&b) //nolint:errcheck // strings.Builder never errors
	return b.String()
}
