package secretary

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/matroid"
	"repro/internal/submodular"
)

func TestClassicalEdgeCases(t *testing.T) {
	if Classical(nil) != -1 {
		t.Fatal("empty stream should hire nobody")
	}
	if Classical([]float64{7}) != 0 {
		t.Fatal("singleton stream should hire the only candidate")
	}
	// Decreasing stream: bar set by first ⌊n/e⌋, nobody later exceeds.
	if got := Classical([]float64{5, 4, 3, 2, 1}); got != -1 {
		t.Fatalf("decreasing stream hired %d", got)
	}
	// Increasing stream: first post-observation candidate beats sample.
	if got := Classical([]float64{1, 2, 3, 4, 5}); got != 1 {
		t.Fatalf("increasing stream hired %d, want 1", got)
	}
}

func TestClassicalHiresBestAtOneOverE(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	n, trials := 50, 4000
	values := make([]float64, n)
	hits, walks := 0, 0
	for trial := 0; trial < trials; trial++ {
		perm := rng.Perm(n)
		bestPos := 0
		for pos, item := range perm {
			values[pos] = float64(item)
			if item == n-1 {
				bestPos = pos
			}
		}
		switch got := Classical(values); got {
		case bestPos:
			hits++
		case -1:
			walks++
		}
	}
	p := float64(hits) / float64(trials)
	if p < 0.30 || p > 0.45 {
		t.Fatalf("P[hire best] = %v, want ≈ 1/e", p)
	}
	// Walks away exactly when the best is inside the sample: ≈ 1/e too.
	w := float64(walks) / float64(trials)
	if w < 0.25 || w > 0.45 {
		t.Fatalf("P[no hire] = %v, want ≈ 1/e", w)
	}
}

func TestTopKCollectsConstantFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	n, k, trials := 60, 5, 400
	sum := 0.0
	optTop := 0.0
	for trial := 0; trial < trials; trial++ {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64() * 100
		}
		perm := rng.Perm(n)
		stream := make([]float64, n)
		for pos, item := range perm {
			stream[pos] = vals[item]
		}
		sorted := append([]float64(nil), vals...)
		for i := 0; i < k; i++ { // partial selection sort for top-k sum
			maxJ := i
			for j := i + 1; j < n; j++ {
				if sorted[j] > sorted[maxJ] {
					maxJ = j
				}
			}
			sorted[i], sorted[maxJ] = sorted[maxJ], sorted[i]
			optTop += sorted[i]
		}
		for _, pos := range TopK(stream, k) {
			sum += stream[pos]
		}
	}
	ratio := sum / optTop
	if ratio < 0.25 {
		t.Fatalf("TopK ratio = %v, want a constant fraction", ratio)
	}
}

func TestTopKEdge(t *testing.T) {
	if TopK(nil, 3) != nil {
		t.Fatal("empty stream")
	}
	if got := TopK([]float64{1, 2}, 0); got != nil {
		t.Fatalf("k=0 hired %v", got)
	}
	if got := TopK([]float64{3}, 5); len(got) > 1 {
		t.Fatalf("k>n hired %v", got)
	}
}

// coverageStream builds a random coverage function over nItems sets.
func coverageStream(rng *rand.Rand, nItems, ground int) *submodular.Coverage {
	sets := make([]*bitset.Set, nItems)
	for i := range sets {
		sets[i] = bitset.New(ground)
		for e := 0; e < ground; e++ {
			if rng.Intn(5) == 0 {
				sets[i].Add(e)
			}
		}
	}
	return submodular.NewCoverage(ground, sets, nil)
}

// TestMonotoneSubmodularBound: Theorem 3.2.5's guarantee
// E[f(T)] ≥ (1−1/e)/(7e)·f(R), measured against the offline greedy (a
// lower bound on f(R), making the assertion conservative).
func TestMonotoneSubmodularBound(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	nItems, ground, k, trials := 40, 80, 8, 200
	f := coverageStream(rng, nItems, ground)
	opt := f.Eval(OfflineGreedyCardinality(f, k))
	if opt <= 0 {
		t.Fatal("degenerate instance")
	}
	total := 0.0
	for trial := 0; trial < trials; trial++ {
		picked := MonotoneSubmodular(f, rng.Perm(nItems), k)
		if picked.Count() > k {
			t.Fatalf("picked %d items with k=%d", picked.Count(), k)
		}
		total += f.Eval(picked)
	}
	avg := total / float64(trials)
	bound := (1 - 1/math.E) / (7 * math.E) * opt
	if avg < bound {
		t.Fatalf("avg %v below Theorem 3.2.5 bound %v (opt %v)", avg, bound, opt)
	}
	// Empirically Algorithm 1 does far better than the proof's constant;
	// flag if it collapses below a quarter of greedy.
	if avg < 0.25*opt {
		t.Fatalf("avg %v is suspiciously low vs greedy %v", avg, opt)
	}
}

func TestMonotoneSubmodularEdge(t *testing.T) {
	f := &submodular.Modular{Weights: []float64{1, 2, 3}}
	if got := MonotoneSubmodular(f, nil, 2); got.Count() != 0 {
		t.Fatal("empty stream picked items")
	}
	if got := MonotoneSubmodular(f, []int{0, 1, 2}, 0); got.Count() != 0 {
		t.Fatal("k=0 picked items")
	}
	// k > n still works.
	got := MonotoneSubmodular(f, []int{2, 0, 1}, 9)
	if got.Count() > 3 {
		t.Fatal("picked more than the stream")
	}
}

// TestSubmodularNonMonotone: Theorem 3.2.8's 8e² bound on cut functions,
// against the exact optimum via brute force.
func TestSubmodularNonMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	n, k, trials := 14, 4, 300
	cut := submodular.NewCut(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(3) == 0 {
				cut.AddEdge(i, j, 1+rng.Float64()*3)
			}
		}
	}
	_, opt := BruteForceMax(cut, k, nil)
	if opt <= 0 {
		t.Fatal("degenerate cut instance")
	}
	total := 0.0
	for trial := 0; trial < trials; trial++ {
		picked := Submodular(cut, rng.Perm(n), k, rng)
		if picked.Count() > k {
			t.Fatalf("picked %d items with k=%d", picked.Count(), k)
		}
		total += cut.Eval(picked)
	}
	avg := total / float64(trials)
	bound := opt / (8 * math.E * math.E)
	if avg < bound {
		t.Fatalf("avg %v below 8e² bound %v (opt %v)", avg, bound, opt)
	}
}

// TestMatroidSecretary: Algorithm 3 output is always independent and
// clears a generous O(log² r) fraction of the offline matroid greedy.
func TestMatroidSecretary(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	nItems, ground, trials := 32, 60, 300
	f := coverageStream(rng, nItems, ground)
	class := make([]int, nItems)
	for i := range class {
		class[i] = i % 8
	}
	caps := []int{2, 2, 2, 2, 1, 1, 1, 1}
	constraints := matroid.NewIntersection(matroid.NewPartition(class, caps))
	r := constraints.MaxRank()
	opt := f.Eval(OfflineGreedyMatroid(f, constraints))
	total := 0.0
	for trial := 0; trial < trials; trial++ {
		picked := MatroidSubmodular(f, constraints, rng.Perm(nItems), rng)
		if !constraints.Independent(picked) {
			t.Fatalf("dependent output %v", picked)
		}
		total += f.Eval(picked)
	}
	avg := total / float64(trials)
	logR := math.Log2(float64(r)) + 1
	bound := opt / (8 * math.E * logR * logR)
	if avg < bound {
		t.Fatalf("avg %v below O(log² r) bound %v (opt %v, r %d)", avg, bound, opt, r)
	}
}

func TestMatroidSecretaryTwoConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	nItems := 24
	f := &submodular.Modular{Weights: make([]float64, nItems)}
	for i := range f.Weights {
		f.Weights[i] = rng.Float64() * 10
	}
	class := make([]int, nItems)
	for i := range class {
		class[i] = i % 6
	}
	m1 := matroid.NewPartition(class, []int{1, 1, 1, 1, 1, 1})
	m2 := matroid.Uniform{N: nItems, K: 4}
	constraints := matroid.NewIntersection(m1, m2)
	for trial := 0; trial < 100; trial++ {
		picked := MatroidSubmodularNonMonotone(f, constraints, rng.Perm(nItems), rng)
		if !constraints.Independent(picked) {
			t.Fatalf("violates a constraint: %v", picked)
		}
	}
}

// TestKnapsackSecretary: feasibility is maintained for every knapsack and
// the average value clears a generous O(l) fraction of the offline
// estimate.
func TestKnapsackSecretary(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	nItems, ground, trials := 30, 60, 300
	f := coverageStream(rng, nItems, ground)
	l := 2
	weights := make([][]float64, l)
	for i := range weights {
		weights[i] = make([]float64, nItems)
		for j := range weights[i] {
			weights[i][j] = 0.1 + rng.Float64()*0.4
		}
	}
	caps := []float64{1.5, 2}
	// Offline comparator on the full stream.
	all := make([]int, nItems)
	for i := range all {
		all[i] = i
	}
	w := reduceWeights(weights, caps, nItems)
	est := offlineKnapsackValue(f, w, all)
	if est <= 0 {
		t.Fatal("degenerate instance")
	}
	total := 0.0
	for trial := 0; trial < trials; trial++ {
		picked := Knapsack(f, weights, caps, rng.Perm(nItems), rng)
		if !FeasibleForKnapsacks(picked, weights, caps) {
			t.Fatalf("infeasible pick %v", picked)
		}
		total += f.Eval(picked)
	}
	avg := total / float64(trials)
	if avg < est/(20*float64(l)) {
		t.Fatalf("avg %v below O(l) fraction of offline %v", avg, est)
	}
}

// TestSubadditiveAlgorithm: the O(√n) guarantee on a modular function.
func TestSubadditiveAlgorithm(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	n, trials := 49, 400
	f := &submodular.Modular{Weights: make([]float64, n)}
	for i := range f.Weights {
		f.Weights[i] = rng.Float64() * 10
	}
	k := 7 // √n
	picked := bitset.New(n)
	opt := 0.0
	// OPT for modular with |S| ≤ k: top-k weights.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		maxJ := i
		for j := i + 1; j < n; j++ {
			if f.Weights[idx[j]] > f.Weights[idx[maxJ]] {
				maxJ = j
			}
		}
		idx[i], idx[maxJ] = idx[maxJ], idx[i]
		opt += f.Weights[idx[i]]
	}
	total := 0.0
	for trial := 0; trial < trials; trial++ {
		picked = Subadditive(f, rng.Perm(n), k, rng)
		if picked.Count() > k {
			t.Fatalf("picked %d > k=%d", picked.Count(), k)
		}
		total += f.Eval(picked)
	}
	avg := total / float64(trials)
	bound := opt / (4 * math.Sqrt(float64(n)))
	if avg < bound {
		t.Fatalf("avg %v below O(√n) bound %v (opt %v)", avg, bound, opt)
	}
}

// TestHiddenSetHardness: polynomially many probes of bounded size never
// see a value above 1 (Lemma 3.5.2), while the hidden optimum is large.
func TestHiddenSetHardness(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	n := 900
	k := 30 // = √n = m; λ=8 gives per-probe leak probability ≈ e^{-Ω(λ)}
	h := NewHiddenSet(rng, n, k, k, 8)
	if h.OptValue() < 3 {
		t.Skipf("planted set too small this seed: opt %v", h.OptValue())
	}
	// 2000 random probes of size ≤ m.
	for q := 0; q < 2000; q++ {
		s := bitset.New(n)
		size := 1 + rng.Intn(k)
		for j := 0; j < size; j++ {
			s.Add(rng.Intn(n))
		}
		if v := h.Eval(s); v > 1 {
			t.Fatalf("probe %d leaked value %v", q, v)
		}
	}
	// Greedy probing (grow a set by best marginal) learns nothing either:
	// all marginals are identical, so greedy is blind.
	s := bitset.New(n)
	for j := 0; j < k; j++ {
		s.Add(rng.Intn(n))
	}
	if v := h.Eval(s); v > 1 {
		t.Fatalf("greedy-style probe leaked value %v", v)
	}
}

// TestHiddenSetAlmostSubmodular: Proposition 3.5.3 — monotone, subadditive,
// and submodular up to additive 2.
func TestHiddenSetAlmostSubmodular(t *testing.T) {
	rng := rand.New(rand.NewSource(149))
	h := NewHiddenSet(rng, 60, 12, 12, 2)
	for trial := 0; trial < 400; trial++ {
		a, b := bitset.New(60), bitset.New(60)
		for e := 0; e < 60; e++ {
			if rng.Intn(2) == 0 {
				a.Add(e)
			}
			if rng.Intn(2) == 0 {
				b.Add(e)
			}
		}
		fa, fb := h.Eval(a), h.Eval(b)
		fu := h.Eval(bitset.Union(a, b))
		fi := h.Eval(bitset.Intersect(a, b))
		if fa+fb < fu+fi-2 {
			t.Fatalf("almost-submodularity violated: %v+%v < %v+%v-2", fa, fb, fu, fi)
		}
		if fu > fa+fb {
			t.Fatalf("subadditivity violated: %v > %v+%v", fu, fa, fb)
		}
		if !a.SubsetOf(bitset.Union(a, b)) || h.Eval(a) > fu {
			t.Fatalf("monotonicity violated")
		}
	}
}

// TestBottleneckMin: the rule hires at most k and, with probability
// bounded away from zero, exactly the k best candidates (Theorem 3.6.1
// promises ≥ 1/e^{2k}).
func TestBottleneckMin(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	n, k, trials := 40, 2, 4000
	exact := 0
	for trial := 0; trial < trials; trial++ {
		perm := rng.Perm(n)
		values := make([]float64, n)
		for pos, item := range perm {
			values[pos] = float64(item)
		}
		hired := BottleneckMin(values, k)
		if len(hired) > k {
			t.Fatalf("hired %d > k", len(hired))
		}
		if len(hired) == k {
			// Exactly the k best? (items n-1, n-2)
			got := map[float64]bool{}
			for _, pos := range hired {
				got[values[pos]] = true
			}
			if got[float64(n-1)] && got[float64(n-2)] {
				exact++
			}
		}
	}
	p := float64(exact) / float64(trials)
	bound := 1 / math.Exp(2*float64(k)) // 1/e^{2k} ≈ 0.018 for k=2
	if p < bound {
		t.Fatalf("P[hire k best] = %v below Theorem 3.6.1 bound %v", p, bound)
	}
}

func TestBottleneckEdge(t *testing.T) {
	if got := BottleneckMin(nil, 2); got != nil {
		t.Fatal("empty stream")
	}
	if got := BottleneckMin([]float64{1, 2}, 0); got != nil {
		t.Fatal("k=0")
	}
	// k >= n: observation window shrinks to n-1 at most.
	got := BottleneckMin([]float64{1, 2, 3}, 5)
	if len(got) == 0 {
		t.Fatal("should hire someone on an increasing stream")
	}
}

func TestOfflineGreedyVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(157))
	f := coverageStream(rng, 12, 25)
	k := 4
	greedy := f.Eval(OfflineGreedyCardinality(f, k))
	_, opt := BruteForceMax(f, k, nil)
	if greedy > opt+1e-9 {
		t.Fatalf("greedy %v beat brute force %v", greedy, opt)
	}
	if greedy < (1-1/math.E)*opt-1e-9 {
		t.Fatalf("greedy %v below (1-1/e)·OPT = %v", greedy, (1-1/math.E)*opt)
	}
}

func BenchmarkMonotoneSubmodular(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	f := coverageStream(rng, 60, 120)
	order := rng.Perm(60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MonotoneSubmodular(f, order, 10)
	}
}

func BenchmarkKnapsackSecretary(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	f := coverageStream(rng, 40, 80)
	weights := [][]float64{make([]float64, 40)}
	for j := range weights[0] {
		weights[0][j] = 0.1 + rng.Float64()*0.3
	}
	caps := []float64{1}
	order := rng.Perm(40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Knapsack(f, weights, caps, order, rng)
	}
}
