package streambound_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/streambound"
)

func TestStreambound(t *testing.T) {
	analysistest.Run(t, "testdata", streambound.Analyzer, "budget", "other")
}
