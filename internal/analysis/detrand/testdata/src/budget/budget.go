// Fixture: a determinism-critical package (its name is in the critical
// set). Global math/rand state and time.Now must be flagged; injected
// generators and seeded constructors must not.
package budget

import (
	"math/rand"
	"time"
)

// bad consumes the process-global generator and the wall clock — the
// exact nondeterminism the differential worker-count tests would miss
// intermittently.
func bad() int {
	rand.Seed(42)                      // want `global math/rand\.Seed`
	x := rand.Intn(10)                 // want `global math/rand\.Intn`
	y := rand.Float64()                // want `global math/rand\.Float64`
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand\.Shuffle`
	if time.Now().IsZero() {           // want `time\.Now in determinism-critical`
		return 0
	}
	return x + int(y)
}

// good is the sanctioned pattern: a seeded generator, injected or built
// locally from an explicit seed, with all draws going through it.
func good(rng *rand.Rand) int {
	local := rand.New(rand.NewSource(7))
	z := rand.NewZipf(local, 1.5, 1, 100)
	return rng.Intn(10) + local.Intn(3) + int(z.Uint64())
}

// durations that do not read the clock are fine.
func goodTime(d time.Duration) time.Duration { return d * 2 }
