package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"

	"repro/internal/sched"
)

// ScheduleResponse is the /v1/schedule reply (and each /v1/batch entry).
type ScheduleResponse struct {
	Schedule *ScheduleSpec `json:"schedule,omitempty"`
	Error    string        `json:"error,omitempty"`
	CacheHit bool          `json:"cache_hit"`
}

// BatchRequest is the /v1/batch body.
type BatchRequest struct {
	Requests []InstanceSpec `json:"requests"`
}

// BatchResponse is the /v1/batch reply, aligned by index with the body.
type BatchResponse struct {
	Results []ScheduleResponse `json:"results"`
}

// MaxRequestBytes bounds request bodies so a hostile client cannot make
// the decoder buffer unbounded input.
const MaxRequestBytes = 64 << 20

// SessionResponse is the reply to session create/mutate/takeover calls.
// Seq is the session's mutation sequence after the call; on a 409 it is
// the current sequence the conflicting caller must reconcile against.
type SessionResponse struct {
	ID     string `json:"id,omitempty"`
	Digest string `json:"digest,omitempty"`
	Seq    uint64 `json:"seq,omitempty"`
	Error  string `json:"error,omitempty"`
}

// MutateRequest is the /v1/session/{id}/mutate body. ExpectSeq, when
// present, makes the mutate conditional: it applies only if the
// session's sequence equals it (409 + current seq otherwise) — the
// handshake that makes mutation retries safe across lost replies.
type MutateRequest struct {
	Mutations []MutationSpec `json:"mutations"`
	ExpectSeq *int64         `json:"expect_seq,omitempty"`
}

// NewHTTPHandler binds svc to the JSON-over-HTTP surface:
//
//	POST   /v1/schedule              one InstanceSpec in, ScheduleResponse out
//	POST   /v1/batch                 BatchRequest in, BatchResponse out
//	POST   /v1/session               InstanceSpec in, SessionResponse{id,digest} out
//	PUT    /v1/session/{id}          create under a caller-chosen id (router-minted)
//	POST   /v1/session/{id}/mutate   MutateRequest in, SessionResponse{digest,seq} out
//	POST   /v1/session/{id}/solve    ScheduleResponse out (digest-cached)
//	POST   /v1/session/{id}/takeover re-read the session from shared StateDir
//	POST   /v1/session/{id}/release  unload it, leaving the journal for the next owner
//	GET    /v1/session/{id}          SessionInfo out
//	DELETE /v1/session/{id}          drop the session
//	GET    /healthz                  liveness
//	GET    /stats                    Stats counters
//
// Infeasible instances (unschedulable, value unreachable) answer 422 with
// the error in the body; malformed requests answer 400; unknown session
// ids answer 404; a conditional mutate whose expect_seq does not match
// answers 409 with the current seq; a draining service, a storage
// failure, or a timed-out solve answers 503; the session cap answers
// 429. Every 429/503 carries a Retry-After header (Config.RetryAfter)
// so well-behaved clients back off instead of hammering a draining or
// degraded server. GET /metrics exposes the Stats counters in
// Prometheus text format.
func NewHTTPHandler(svc *Service) http.Handler {
	retryAfter := strconv.Itoa(int(math.Ceil(svc.cfg.RetryAfter.Seconds())))
	writeJSON := func(w http.ResponseWriter, status int, v any) {
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", retryAfter)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v) //nolint:errcheck // the response is already committed
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/schedule", func(w http.ResponseWriter, r *http.Request) {
		var spec InstanceSpec
		if err := decodeBody(w, r, &spec); err != nil {
			writeJSON(w, http.StatusBadRequest, ScheduleResponse{Error: err.Error()})
			return
		}
		req, err := BuildRequest(spec)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, ScheduleResponse{Error: err.Error()})
			return
		}
		res := svc.Do(r.Context(), req)
		writeJSON(w, statusFor(res.Err), toResponse(res))
	})
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var batch BatchRequest
		if err := decodeBody(w, r, &batch); err != nil {
			writeJSON(w, http.StatusBadRequest, ScheduleResponse{Error: err.Error()})
			return
		}
		reqs := make([]Request, len(batch.Requests))
		for i, spec := range batch.Requests {
			req, err := BuildRequest(spec)
			if err != nil {
				writeJSON(w, http.StatusBadRequest,
					ScheduleResponse{Error: fmt.Sprintf("request %d: %v", i, err)})
				return
			}
			reqs[i] = req
		}
		results := svc.SubmitBatch(r.Context(), reqs)
		out := BatchResponse{Results: make([]ScheduleResponse, len(results))}
		for i, res := range results {
			out.Results[i] = toResponse(res)
		}
		// Per-request failures live inside each entry; the envelope is 200.
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("POST /v1/session", func(w http.ResponseWriter, r *http.Request) {
		var spec InstanceSpec
		if err := decodeBody(w, r, &spec); err != nil {
			writeJSON(w, http.StatusBadRequest, SessionResponse{Error: err.Error()})
			return
		}
		id, digest, err := svc.CreateSession(spec)
		if err != nil {
			writeJSON(w, statusFor(err), SessionResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, SessionResponse{ID: id, Digest: digest})
	})
	mux.HandleFunc("PUT /v1/session/{id}", func(w http.ResponseWriter, r *http.Request) {
		var spec InstanceSpec
		if err := decodeBody(w, r, &spec); err != nil {
			writeJSON(w, http.StatusBadRequest, SessionResponse{Error: err.Error()})
			return
		}
		id := r.PathValue("id")
		digest, err := svc.CreateSessionWithID(id, spec)
		if err != nil {
			writeJSON(w, statusFor(err), SessionResponse{ID: id, Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, SessionResponse{ID: id, Digest: digest})
	})
	mux.HandleFunc("POST /v1/session/{id}/mutate", func(w http.ResponseWriter, r *http.Request) {
		var body MutateRequest
		if err := decodeBody(w, r, &body); err != nil {
			writeJSON(w, http.StatusBadRequest, SessionResponse{Error: err.Error()})
			return
		}
		id := r.PathValue("id")
		expect := int64(-1)
		if body.ExpectSeq != nil {
			expect = *body.ExpectSeq
		}
		digest, seq, err := svc.MutateSessionAt(id, expect, body.Mutations)
		if err != nil {
			writeJSON(w, statusFor(err), SessionResponse{ID: id, Digest: digest, Seq: seq, Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, SessionResponse{ID: id, Digest: digest, Seq: seq})
	})
	mux.HandleFunc("POST /v1/session/{id}/takeover", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		digest, seq, err := svc.TakeoverSession(id)
		if err != nil {
			writeJSON(w, statusFor(err), SessionResponse{ID: id, Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, SessionResponse{ID: id, Digest: digest, Seq: seq})
	})
	mux.HandleFunc("POST /v1/session/{id}/release", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := svc.ReleaseSession(id); err != nil {
			writeJSON(w, statusFor(err), SessionResponse{ID: id, Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, SessionResponse{ID: id})
	})
	mux.HandleFunc("POST /v1/session/{id}/solve", func(w http.ResponseWriter, r *http.Request) {
		res := svc.SolveSession(r.Context(), r.PathValue("id"))
		writeJSON(w, statusFor(res.Err), toResponse(res))
	})
	mux.HandleFunc("GET /v1/session/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, err := svc.SessionInfo(r.PathValue("id"))
		if err != nil {
			writeJSON(w, statusFor(err), SessionResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("DELETE /v1/session/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := svc.DropSession(r.PathValue("id")); err != nil {
			writeJSON(w, statusFor(err), SessionResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, SessionResponse{ID: r.PathValue("id")})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Stats())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, svc.Stats())
	})
	return mux
}

// writeMetrics renders the Stats snapshot in the Prometheus text
// exposition format, durability counters included — the scrape surface
// the ROADMAP's distributed tier watches.
func writeMetrics(w io.Writer, st Stats) {
	type metric struct {
		name, kind, help string
		value            float64
	}
	metrics := []metric{
		{"powersched_workers", "gauge", "Solver goroutines in the pool.", float64(st.Workers)},
		{"powersched_queue_depth", "gauge", "Requests waiting in the queue right now.", float64(st.QueueDepth)},
		{"powersched_queue_cap", "gauge", "Configured queue bound.", float64(st.QueueCap)},
		{"powersched_cache_size", "gauge", "Entries in the digest result cache.", float64(st.CacheSize)},
		{"powersched_sessions", "gauge", "Live solver sessions.", float64(st.Sessions)},
		{"powersched_submitted_total", "counter", "Requests accepted into the service.", float64(st.Submitted)},
		{"powersched_completed_total", "counter", "Requests answered (solved or cached).", float64(st.Completed)},
		{"powersched_errors_total", "counter", "Requests answered with an error.", float64(st.Errors)},
		{"powersched_canceled_total", "counter", "Requests abandoned before solving (timeouts included).", float64(st.Canceled)},
		{"powersched_cache_hits_total", "counter", "Requests answered from the digest cache.", float64(st.CacheHits)},
		{"powersched_cache_misses_total", "counter", "Requests solved and cached.", float64(st.CacheMisses)},
		{"powersched_model_reuses_total", "counter", "Worker reuses of a prebuilt model.", float64(st.ModelReuses)},
		{"powersched_journal_records_total", "counter", "Journal records written (snapshots included).", float64(st.JournalRecords)},
		{"powersched_journal_fsyncs_total", "counter", "Journal fsyncs issued.", float64(st.JournalFsyncs)},
		{"powersched_journal_compactions_total", "counter", "Journals folded to a snapshot record.", float64(st.JournalCompactions)},
		{"powersched_sessions_restored_total", "counter", "Sessions replayed from journals at startup.", float64(st.SessionsRestored)},
		{"powersched_journals_dropped_corrupt_total", "counter", "Journals quarantined as corrupt at startup.", float64(st.JournalsDropped)},
		{"powersched_journal_errors_total", "counter", "Live-path journal failures (each drops its session).", float64(st.JournalErrors)},
	}
	for _, m := range metrics {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
			m.name, m.help, m.name, m.kind,
			m.name, strconv.FormatFloat(m.value, 'g', -1, 64))
	}
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	return nil
}

func toResponse(res Result) ScheduleResponse {
	if res.Err != nil {
		return ScheduleResponse{Error: res.Err.Error(), CacheHit: res.CacheHit}
	}
	spec := EncodeSchedule(res.Schedule)
	return ScheduleResponse{Schedule: &spec, CacheHit: res.CacheHit}
}

func statusFor(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, sched.ErrUnschedulable), errors.Is(err, sched.ErrValueUnreachable):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrClosed), errors.Is(err, ErrDurability),
		errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrNoSession):
		return http.StatusNotFound
	case errors.Is(err, ErrSeqConflict):
		return http.StatusConflict
	case errors.Is(err, ErrTooManySessions):
		return http.StatusTooManyRequests
	default:
		return http.StatusBadRequest
	}
}
