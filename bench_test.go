// Top-level benchmark harness: one benchmark per experiment in DESIGN.md's
// index (E1–E15, A1–A4). Each iteration regenerates the experiment's table
// at quick scale, so `go test -bench=.` re-derives every reproduced result.
// Per-module micro-benchmarks live next to their packages.
package powersched_test

import (
	"io"
	"math/rand"
	"testing"

	"repro/internal/experiments"
	"repro/internal/online"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	benchExperimentCfg(b, id, experiments.Config{Seed: 42, Quick: true})
}

// benchExperimentW times an experiment with the greedy's probe
// parallelism set: the same tables (worker counts never change picks),
// only the candidate scans and lazy revalidation run W-wide on sharded
// incremental-oracle replicas. Compare against the serial benchmark of
// the same experiment for the parallel-scaling table in the README.
func benchExperimentW(b *testing.B, id string, workers int) {
	b.Helper()
	benchExperimentCfg(b, id, experiments.Config{Seed: 42, Quick: true, Workers: workers})
}

func benchExperimentCfg(b *testing.B, id string, cfg experiments.Config) {
	b.Helper()
	var run func(experiments.Config) interface {
		WriteTo(io.Writer) (int64, error)
	}
	for _, e := range experiments.All() {
		if e.ID == id {
			e := e
			run = func(c experiments.Config) interface {
				WriteTo(io.Writer) (int64, error)
			} {
				return e.Run(c)
			}
			break
		}
	}
	if run == nil {
		b.Fatalf("no experiment %s", id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl := run(cfg)
		if _, err := tbl.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1BudgetedGreedy(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE2ScheduleAll(b *testing.B)         { benchExperiment(b, "E2") }
func BenchmarkE3PrizeCollecting(b *testing.B)     { benchExperiment(b, "E3") }
func BenchmarkE4ExactThreshold(b *testing.B)      { benchExperiment(b, "E4") }
func BenchmarkE5Classical(b *testing.B)           { benchExperiment(b, "E5") }
func BenchmarkE6MonotoneSecretary(b *testing.B)   { benchExperiment(b, "E6") }
func BenchmarkE7NonMonotone(b *testing.B)         { benchExperiment(b, "E7") }
func BenchmarkE8MatroidSecretary(b *testing.B)    { benchExperiment(b, "E8") }
func BenchmarkE9KnapsackSecretary(b *testing.B)   { benchExperiment(b, "E9") }
func BenchmarkE10Subadditive(b *testing.B)        { benchExperiment(b, "E10") }
func BenchmarkE11Bottleneck(b *testing.B)         { benchExperiment(b, "E11") }
func BenchmarkE12HardnessReduction(b *testing.B)  { benchExperiment(b, "E12") }
func BenchmarkE13GapDP(b *testing.B)              { benchExperiment(b, "E13") }
func BenchmarkE14OnlinePowerDown(b *testing.B)    { benchExperiment(b, "E14") }
func BenchmarkE15GammaOblivious(b *testing.B)     { benchExperiment(b, "E15") }
func BenchmarkE16RollingHorizon(b *testing.B)     { benchExperiment(b, "E16") }
func BenchmarkE17ScenarioMatrix(b *testing.B)     { benchExperiment(b, "E17") }
func BenchmarkE18StreamingCrossover(b *testing.B) { benchExperiment(b, "E18") }
func BenchmarkA1LazyGreedy(b *testing.B)          { benchExperiment(b, "A1") }
func BenchmarkA2CandidatePolicy(b *testing.B)     { benchExperiment(b, "A2") }
func BenchmarkA3IncrementalMatching(b *testing.B) { benchExperiment(b, "A3") }
func BenchmarkA4EpsilonSweep(b *testing.B)        { benchExperiment(b, "A4") }

// Worker sweeps for the greedy-bound experiments (the parallel-scaling
// table): serial is the plain benchmark above; W2/W4/W8 shard candidate
// probes across that many incremental-oracle replicas, synced per round
// by delta replay. The CI multicore perf job runs this sweep on a
// multi-core runner (the dev container is single-CPU, where the sweep
// only measures coordination overhead).
func BenchmarkE2ScheduleAllW2(b *testing.B)         { benchExperimentW(b, "E2", 2) }
func BenchmarkE2ScheduleAllW4(b *testing.B)         { benchExperimentW(b, "E2", 4) }
func BenchmarkE2ScheduleAllW8(b *testing.B)         { benchExperimentW(b, "E2", 8) }
func BenchmarkE3PrizeCollectingW2(b *testing.B)     { benchExperimentW(b, "E3", 2) }
func BenchmarkE3PrizeCollectingW4(b *testing.B)     { benchExperimentW(b, "E3", 4) }
func BenchmarkE3PrizeCollectingW8(b *testing.B)     { benchExperimentW(b, "E3", 8) }
func BenchmarkE4ExactThresholdW2(b *testing.B)      { benchExperimentW(b, "E4", 2) }
func BenchmarkE4ExactThresholdW4(b *testing.B)      { benchExperimentW(b, "E4", 4) }
func BenchmarkE4ExactThresholdW8(b *testing.B)      { benchExperimentW(b, "E4", 8) }
func BenchmarkE6MonotoneSecretaryW2(b *testing.B)   { benchExperimentW(b, "E6", 2) }
func BenchmarkE6MonotoneSecretaryW4(b *testing.B)   { benchExperimentW(b, "E6", 4) }
func BenchmarkE6MonotoneSecretaryW8(b *testing.B)   { benchExperimentW(b, "E6", 8) }
func BenchmarkA3IncrementalMatchingW2(b *testing.B) { benchExperimentW(b, "A3", 2) }
func BenchmarkA3IncrementalMatchingW4(b *testing.B) { benchExperimentW(b, "A3", 4) }
func BenchmarkA3IncrementalMatchingW8(b *testing.B) { benchExperimentW(b, "A3", 8) }

// benchScheduleAllLazy isolates per-instance worker scaling from the
// experiments' trial-level parallelism: one planted instance, one lazy
// incremental greedy, W probe workers. This is the latency story a single
// service request sees; the experiment sweeps above measure throughput.
func benchScheduleAllLazy(b *testing.B, workers int) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	ins, _ := workload.PlantedSchedule(rng, workload.PlantedParams{
		Procs: 2, Horizon: 96, IntervalsPerProc: 2, JobsPerInterval: 16,
		ExtraSlotsPerJob: 2,
		Cost:             power.Affine{Alpha: 4, Rate: 1},
	})
	opts := sched.Options{Lazy: true, Workers: workers}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.ScheduleAll(ins, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleAllLazyW1(b *testing.B) { benchScheduleAllLazy(b, 1) }
func BenchmarkScheduleAllLazyW2(b *testing.B) { benchScheduleAllLazy(b, 2) }
func BenchmarkScheduleAllLazyW4(b *testing.B) { benchScheduleAllLazy(b, 4) }
func BenchmarkScheduleAllLazyW8(b *testing.B) { benchScheduleAllLazy(b, 8) }

// BenchmarkSessionResolve measures the session's warm re-solve cycle —
// mutate (add a job), solve, mutate back (remove it), solve — against
// the same planted instance BenchmarkScheduleAllLazyW1 solves from
// scratch. The add-side re-solve rides the in-place model extension and
// the seeded lazy heap; the remove side pays the model rebuild, keeping
// the number honest about both invalidation paths.
func BenchmarkSessionResolve(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	ins, _ := workload.PlantedSchedule(rng, workload.PlantedParams{
		Procs: 2, Horizon: 96, IntervalsPerProc: 2, JobsPerInterval: 16,
		ExtraSlotsPerJob: 2,
		Cost:             power.Affine{Alpha: 4, Rate: 1},
	})
	sess, err := sched.NewSession(ins, sched.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sess.Solve(); err != nil {
		b.Fatal(err)
	}
	extra := sched.Job{Value: 1, Allowed: ins.Jobs[0].Allowed}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := sess.AddJob(extra)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Solve(); err != nil {
			b.Fatal(err)
		}
		if err := sess.RemoveJob(j); err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineTrace runs a whole Poisson-burst arrival trace through
// the rolling-horizon engine per iteration: trace generation, one warm
// re-solve per event, commitment, and the final report.
func BenchmarkEngineTrace(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := workload.PoissonBurstTrace(rand.New(rand.NewSource(11)), workload.TraceParams{
			Procs: 2, Horizon: 64, Jobs: 24, Window: 2,
		})
		rep, err := online.RunTrace(tr, sched.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Plan == nil {
			b.Fatal("no plan")
		}
	}
}
