// Fixture: delta-oracle types (CommitDelta+ApplyDelta method set) whose
// CommitDelta bodies leak — or correctly copy — receiver scratch into
// the returned delta, plus ReplicaProvider types with and without the
// delta surface. The Leaky type reconstructs the shared-mutable-delta
// bug: the oracle's probe scratch stored into the delta buffer, so the
// next probe on the committer rewrites the delta under every replica
// still applying it.
package deltaoracle

type delta struct {
	epoch uint64
	items []int
	mask  []bool
}

func (d *delta) DeltaEpoch() uint64 { return d.epoch }

// Leaky aliases its live scratch into the delta.
type Leaky struct {
	scratch []bool
	pending map[int]bool
	d       *delta
	epoch   uint64
}

func (o *Leaky) Gain(items []int) float64 { return float64(len(items)) }
func (o *Leaky) Commit(items []int) float64 {
	o.epoch++
	return float64(len(items))
}

func (o *Leaky) CommitDelta(items []int) (*delta, float64) {
	if o.d == nil {
		o.d = &delta{}
	}
	d := o.d // buffer reuse: a plain local copy of the delta pointer is fine
	d.items = append(d.items[:0], items...)
	d.mask = o.scratch // want `Leaky.CommitDelta\(\) stores reference-typed receiver field "scratch"`
	o.epoch++
	d.epoch = o.epoch
	return d, float64(len(items))
}

func (o *Leaky) ApplyDelta(d *delta) error { o.epoch = d.epoch; return nil }

// LitLeaky plants the alias through a composite literal instead.
type LitLeaky struct {
	scratch []bool
	epoch   uint64
}

func (o *LitLeaky) Gain(items []int) float64   { return 0 }
func (o *LitLeaky) Commit(items []int) float64 { return 0 }

func (o *LitLeaky) CommitDelta(items []int) (*delta, float64) {
	o.epoch++
	return &delta{
		epoch: o.epoch,
		items: items,
		mask:  o.scratch, // want `LitLeaky.CommitDelta\(\) stores reference-typed receiver field "scratch"`
	}, 0
}

func (o *LitLeaky) ApplyDelta(d *delta) error { return nil }

// Clean deep-copies through calls — the sanctioned pattern — and shares
// only an annotated immutable field.
type Clean struct {
	weights []float64 //powersched:delta-shared immutable problem data, never mutated after construction
	scratch []bool
	d       *delta
	epoch   uint64
}

type weightedDelta struct {
	delta
	weights []float64
}

func (o *Clean) Gain(items []int) float64   { return o.weights[0] }
func (o *Clean) Commit(items []int) float64 { return 0 }

func (o *Clean) CommitDelta(items []int) (*weightedDelta, float64) {
	d := &weightedDelta{weights: o.weights} // annotated: immutable share is fine
	d.items = append(d.items[:0], items...)
	d.mask = append(d.mask[:0], o.scratch...) // copied through a call, not aliased
	o.epoch++
	d.epoch = o.epoch
	return d, 0
}

func (o *Clean) ApplyDelta(d *weightedDelta) error { return nil }

// Cow declares Replica() with the full delta surface: compliant.
type Cow struct {
	epoch uint64
}

func (o *Cow) Gain(items []int) float64              { return 0 }
func (o *Cow) Commit(items []int) float64            { o.epoch++; return 0 }
func (o *Cow) Epoch() uint64                         { return o.epoch }
func (o *Cow) CommitDelta(i []int) (*delta, float64) { o.epoch++; return &delta{epoch: o.epoch}, 0 }
func (o *Cow) ApplyDelta(d *delta) error             { o.epoch = d.epoch; return nil }
func (o *Cow) Replica() *Cow                         { return &Cow{epoch: o.epoch} }

// Orphan declares Replica() without any way to sync the replicas.
type Orphan struct {
	count int
}

func (o *Orphan) Gain(items []int) float64   { return 0 }
func (o *Orphan) Commit(items []int) float64 { o.count++; return 0 }

func (o *Orphan) Replica() *Orphan { // want `Orphan declares Replica\(\) but not Epoch` `Orphan declares Replica\(\) but not CommitDelta` `Orphan declares Replica\(\) but not ApplyDelta`
	return &Orphan{count: o.count}
}

// NotADeltaOracle stores scratch into things all it likes: without
// ApplyDelta nothing it returns is a replayable delta.
type NotADeltaOracle struct {
	scratch []bool
}

func (n *NotADeltaOracle) CommitDelta(items []int) *delta {
	return &delta{mask: n.scratch}
}
