package setcover

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/sched"
)

func TestGreedyKnown(t *testing.T) {
	// Classic: two sets cover everything at cost 2; one big set costs 10.
	ins := &Instance{
		N: 4,
		Sets: []*bitset.Set{
			bitset.FromSlice(4, []int{0, 1}),
			bitset.FromSlice(4, []int{2, 3}),
			bitset.FromSlice(4, []int{0, 1, 2, 3}),
		},
		Costs: []float64{1, 1, 10},
	}
	chosen, cost, err := Greedy(ins)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 2 || len(chosen) != 2 {
		t.Fatalf("greedy = %v cost %v, want the two unit sets", chosen, cost)
	}
	if !IsCover(ins, chosen) {
		t.Fatal("greedy output is not a cover")
	}
}

func TestGreedyUncoverable(t *testing.T) {
	ins := &Instance{
		N:     3,
		Sets:  []*bitset.Set{bitset.FromSlice(3, []int{0})},
		Costs: []float64{1},
	}
	if _, _, err := Greedy(ins); !errors.Is(err, ErrUncoverable) {
		t.Fatalf("err = %v", err)
	}
}

func TestGreedyValidation(t *testing.T) {
	ins := &Instance{N: 3, Sets: []*bitset.Set{bitset.New(2)}, Costs: []float64{1}}
	if _, _, err := Greedy(ins); err == nil {
		t.Fatal("universe mismatch accepted")
	}
	ins2 := &Instance{N: 2, Sets: []*bitset.Set{bitset.Full(2)}, Costs: []float64{-1}}
	if _, _, err := Greedy(ins2); err == nil {
		t.Fatal("negative cost accepted")
	}
}

func TestPlantedGreedyWithinLog(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		ins, opt := Planted(rng, 40, 5, 20)
		chosen, cost, err := Greedy(ins)
		if err != nil {
			t.Fatal(err)
		}
		if !IsCover(ins, chosen) {
			t.Fatal("not a cover")
		}
		if cost > opt*(math.Log(40)+1) {
			t.Fatalf("greedy cost %v outside H_n envelope of planted %v", cost, opt)
		}
	}
}

// TestReductionRoundTrip: Theorem .1.2's reduction — scheduling the reduced
// instance yields a cover whose cost tracks the set-cover greedy.
func TestReductionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ins, planted := Planted(rng, 18, 3, 8)
	red := ToScheduling(ins)
	s, err := sched.ScheduleAll(red, sched.Options{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(red); err != nil {
		t.Fatal(err)
	}
	chosen, cost := CoverFromSchedule(ins, s)
	if !IsCover(ins, chosen) {
		t.Fatal("schedule does not induce a cover")
	}
	if cost > planted*(math.Log(18)+2) {
		t.Fatalf("reduced scheduling cover cost %v outside log envelope of %v", cost, planted)
	}
	// Cover cost never exceeds the schedule's own cost.
	if cost > s.Cost+1e-9 {
		t.Fatalf("cover cost %v exceeds schedule cost %v", cost, s.Cost)
	}
}

func TestReductionStructure(t *testing.T) {
	ins := &Instance{
		N: 3,
		Sets: []*bitset.Set{
			bitset.FromSlice(3, []int{0, 1}),
			bitset.FromSlice(3, []int{2}),
		},
		Costs: []float64{2, 3},
	}
	red := ToScheduling(ins)
	if red.Procs != 2 {
		t.Fatalf("procs = %d", red.Procs)
	}
	if red.Horizon != 2 {
		t.Fatalf("horizon = %d, want max set size 2", red.Horizon)
	}
	// Interval cost is flat per processor regardless of length.
	if red.Cost.Cost(0, 0, 1) != 2 || red.Cost.Cost(0, 0, 2) != 2 || red.Cost.Cost(1, 0, 1) != 3 {
		t.Fatal("interval costs must equal set costs")
	}
	// Element 2 can only run on processor 1.
	for _, slot := range red.Jobs[2].Allowed {
		if slot.Proc != 1 {
			t.Fatalf("element 2 allowed on proc %d", slot.Proc)
		}
	}
}

func BenchmarkGreedySetCover(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ins, _ := Planted(rng, 200, 10, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Greedy(ins); err != nil {
			b.Fatal(err)
		}
	}
}
