package secretary

import (
	"math"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/submodular"
)

// Knapsack is the O(l)-competitive multiple-knapsack submodular secretary
// algorithm (Theorem 3.1.3, §3.4).
//
// The l knapsacks (weights[i][j] for knapsack i, item j; capacity caps[i])
// reduce online to a single knapsack of capacity 1 by taking each item's
// weight to be its maximum capacity fraction (Lemma 3.4.1 loses a factor
// ≤ 4l). The single-knapsack routine flips a coin between (a) the classical
// rule on singleton values and (b) estimating OPT offline on the first
// half, then taking density-qualified items from the second half.
func Knapsack(f submodular.Function, weights [][]float64, caps []float64, order []int, rng *rand.Rand) *bitset.Set {
	n := f.Universe()
	w := reduceWeights(weights, caps, n)
	return singleKnapsack(f, w, order, rng)
}

// reduceWeights normalizes the l knapsacks into one: w_j = max_i w_ij/C_i.
// Zero weights are clamped to a tiny positive value so density ratios stay
// defined; such items are effectively free.
func reduceWeights(weights [][]float64, caps []float64, n int) []float64 {
	w := make([]float64, n)
	for i := range weights {
		for j := 0; j < n; j++ {
			frac := weights[i][j] / caps[i]
			if frac > w[j] {
				w[j] = frac
			}
		}
	}
	for j := range w {
		if w[j] < 1e-9 {
			w[j] = 1e-9
		}
	}
	return w
}

// singleKnapsack is §3.4's one-knapsack routine (capacity 1).
func singleKnapsack(f submodular.Function, w []float64, order []int, rng *rand.Rand) *bitset.Set {
	out := bitset.New(f.Universe())
	n := len(order)
	if n == 0 {
		return out
	}
	if rng.Intn(2) == 0 {
		// Branch 1: try for the single best feasible item.
		obs := sampleLen(n)
		bar := math.Inf(-1)
		for pos := 0; pos < obs; pos++ {
			if v := singletonValue(f, order[pos]); v > bar {
				bar = v
			}
		}
		for pos := obs; pos < n; pos++ {
			item := order[pos]
			if w[item] > 1 {
				continue
			}
			if singletonValue(f, item) >= bar {
				out.Add(item)
				return out
			}
		}
		return out
	}
	// Branch 2: estimate OPT on the first half (offline constant-factor
	// greedy substitutes for the Lee et al. routine the thesis cites),
	// then admit second-half items whose marginal density clears OPT̂/6.
	half := n / 2
	est := offlineKnapsackValue(f, w, order[:half])
	if est <= 0 {
		return out
	}
	threshold := est / 6
	total := 0.0
	fOut := f.Eval(out)
	for pos := half; pos < n; pos++ {
		item := order[pos]
		if w[item] <= 0 || total+w[item] > 1 {
			continue
		}
		out.Add(item)
		v := f.Eval(out)
		if (v-fOut)/w[item] >= threshold && v >= fOut {
			total += w[item]
			fOut = v
		} else {
			out.Remove(item)
		}
	}
	return out
}

// offlineKnapsackValue is a constant-factor offline estimate: the max of
// the density greedy and the best single feasible item.
func offlineKnapsackValue(f submodular.Function, w []float64, items []int) float64 {
	sel := bitset.New(f.Universe())
	fSel := f.Eval(sel)
	total := 0.0
	remaining := append([]int(nil), items...)
	for {
		best, bestDensity, bestVal := -1, 0.0, 0.0
		for idx, item := range remaining {
			if item < 0 || w[item] <= 0 || total+w[item] > 1 || sel.Contains(item) {
				continue
			}
			sel.Add(item)
			v := f.Eval(sel)
			sel.Remove(item)
			d := (v - fSel) / w[item]
			if d > bestDensity {
				best, bestDensity, bestVal = idx, d, v
			}
		}
		if best == -1 {
			break
		}
		sel.Add(remaining[best])
		fSel = bestVal
		total += w[remaining[best]]
		remaining[best] = -1
	}
	// Best single feasible item.
	single := 0.0
	for _, item := range items {
		if item >= 0 && w[item] <= 1 {
			if v := singletonValue(f, item); v > single {
				single = v
			}
		}
	}
	return math.Max(fSel, single)
}

// FeasibleForKnapsacks reports whether the picked set satisfies every
// original knapsack constraint — used by tests and experiments to verify
// feasibility is maintained end to end.
func FeasibleForKnapsacks(picked *bitset.Set, weights [][]float64, caps []float64) bool {
	for i := range weights {
		total := 0.0
		feasible := true
		picked.ForEach(func(j int) bool {
			total += weights[i][j]
			if total > caps[i]+1e-9 {
				feasible = false
				return false
			}
			return true
		})
		if !feasible {
			return false
		}
	}
	return true
}
