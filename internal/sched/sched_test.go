package sched

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/power"
	"repro/internal/submodular"
)

// window returns the slots [lo, hi) on proc as an Allowed list.
func window(proc, lo, hi int) []SlotKey {
	var out []SlotKey
	for t := lo; t < hi; t++ {
		out = append(out, SlotKey{Proc: proc, Time: t})
	}
	return out
}

func tinyInstance() *Instance {
	return &Instance{
		Procs:   1,
		Horizon: 10,
		Jobs: []Job{
			{Value: 1, Allowed: window(0, 0, 3)},
			{Value: 1, Allowed: window(0, 2, 5)},
			{Value: 1, Allowed: window(0, 7, 9)},
		},
		Cost: power.Affine{Alpha: 2, Rate: 1},
	}
}

// randomInstance builds a feasible random instance by planting jobs into
// distinct slots and then widening their windows.
func randomInstance(rng *rand.Rand, procs, horizon, jobs int) *Instance {
	used := map[SlotKey]bool{}
	var js []Job
	for len(js) < jobs {
		s := SlotKey{Proc: rng.Intn(procs), Time: rng.Intn(horizon)}
		if used[s] {
			continue
		}
		used[s] = true
		allowed := []SlotKey{s}
		// Widen: extra random slots, possibly on other processors.
		for k := 0; k < rng.Intn(4); k++ {
			allowed = append(allowed, SlotKey{Proc: rng.Intn(procs), Time: rng.Intn(horizon)})
		}
		js = append(js, Job{Value: 1 + float64(rng.Intn(5)), Allowed: allowed})
	}
	return &Instance{Procs: procs, Horizon: horizon, Jobs: js,
		Cost: power.Affine{Alpha: 1 + rng.Float64()*2, Rate: 0.5 + rng.Float64()}}
}

func TestScheduleAllTiny(t *testing.T) {
	ins := tinyInstance()
	s, err := ScheduleAll(ins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Scheduled != 3 {
		t.Fatalf("Scheduled = %d, want 3", s.Scheduled)
	}
	if err := s.Validate(ins); err != nil {
		t.Fatal(err)
	}
	if s.Cost <= 0 {
		t.Fatalf("Cost = %v", s.Cost)
	}
}

func TestScheduleAllEmpty(t *testing.T) {
	ins := &Instance{Procs: 1, Horizon: 5, Cost: power.Affine{Alpha: 1, Rate: 1}}
	s, err := ScheduleAll(ins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Intervals) != 0 || s.Cost != 0 {
		t.Fatalf("empty instance produced %+v", s)
	}
}

func TestScheduleAllUnschedulable(t *testing.T) {
	ins := &Instance{
		Procs:   1,
		Horizon: 5,
		Jobs: []Job{
			{Allowed: []SlotKey{{0, 1}}},
			{Allowed: []SlotKey{{0, 1}}},
		},
		Cost: power.Affine{Alpha: 1, Rate: 1},
	}
	_, err := ScheduleAll(ins, Options{})
	if !errors.Is(err, ErrUnschedulable) {
		t.Fatalf("err = %v, want ErrUnschedulable", err)
	}
}

func TestScheduleAllJobWithNoSlots(t *testing.T) {
	ins := &Instance{
		Procs: 1, Horizon: 5,
		Jobs: []Job{{Allowed: nil}},
		Cost: power.Affine{Alpha: 1, Rate: 1},
	}
	_, err := ScheduleAll(ins, Options{})
	if !errors.Is(err, ErrUnschedulable) {
		t.Fatalf("err = %v, want ErrUnschedulable", err)
	}
}

func TestScheduleAllBadInstance(t *testing.T) {
	cases := []*Instance{
		{Procs: 0, Horizon: 5, Cost: power.Affine{}},
		{Procs: 1, Horizon: 0, Cost: power.Affine{}},
		{Procs: 1, Horizon: 5, Cost: nil},
		{Procs: 1, Horizon: 5, Cost: power.Affine{},
			Jobs: []Job{{Allowed: []SlotKey{{3, 1}}}}},
		{Procs: 1, Horizon: 5, Cost: power.Affine{},
			Jobs: []Job{{Value: -2, Allowed: []SlotKey{{0, 1}}}}},
	}
	for i, ins := range cases {
		if _, err := ScheduleAll(ins, Options{}); err == nil {
			t.Errorf("case %d: bad instance accepted", i)
		}
	}
}

func TestScheduleAllValidatesOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		ins := randomInstance(rng, 1+rng.Intn(3), 8+rng.Intn(8), 3+rng.Intn(6))
		s, err := ScheduleAll(ins, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if s.Scheduled != len(ins.Jobs) {
			t.Fatalf("scheduled %d of %d", s.Scheduled, len(ins.Jobs))
		}
		if err := s.Validate(ins); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFastMatchesBudgetPath(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 15; trial++ {
		ins := randomInstance(rng, 2, 10, 5)
		slow, err := ScheduleAll(ins, Options{})
		if err != nil {
			t.Fatal(err)
		}
		fast, err := ScheduleAll(ins, Options{Fast: true})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(slow.Cost-fast.Cost) > 1e-9 {
			t.Fatalf("fast cost %v != slow cost %v", fast.Cost, slow.Cost)
		}
		if len(slow.Intervals) != len(fast.Intervals) {
			t.Fatalf("interval counts differ: %v vs %v", slow.Intervals, fast.Intervals)
		}
		for i := range slow.Intervals {
			if slow.Intervals[i] != fast.Intervals[i] {
				t.Fatalf("pick sequences differ: %v vs %v", slow.Intervals, fast.Intervals)
			}
		}
		if err := fast.Validate(ins); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLazyMatchesPlainSched(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		ins := randomInstance(rng, 2, 10, 5)
		plain, err := ScheduleAll(ins, Options{})
		if err != nil {
			t.Fatal(err)
		}
		lazy, err := ScheduleAll(ins, Options{Lazy: true})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(plain.Cost-lazy.Cost) > 1e-9 {
			t.Fatalf("lazy cost %v != plain cost %v", lazy.Cost, plain.Cost)
		}
		if lazy.Evals > plain.Evals {
			t.Fatalf("lazy evals %d > plain evals %d", lazy.Evals, plain.Evals)
		}
	}
}

// TestScheduleAllLogNEnvelope: on planted instances the cost stays within
// the Theorem 2.2.1 envelope c·log(n+1)·B against the planted cost B.
func TestScheduleAllLogNEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 10; trial++ {
		// Plant: one awake interval per processor covering contiguous jobs.
		procs := 2
		perProc := 4
		horizon := 12
		var jobs []Job
		cost := power.Affine{Alpha: 2, Rate: 1}
		planted := 0.0
		for p := 0; p < procs; p++ {
			start := rng.Intn(horizon - perProc)
			for k := 0; k < perProc; k++ {
				jobs = append(jobs, Job{Value: 1, Allowed: window(p, start, start+perProc)})
			}
			planted += cost.Cost(p, start, start+perProc)
		}
		ins := &Instance{Procs: procs, Horizon: horizon, Jobs: jobs, Cost: cost}
		s, err := ScheduleAll(ins, Options{})
		if err != nil {
			t.Fatal(err)
		}
		n := float64(len(jobs))
		envelope := 4 * planted * (math.Log2(n+1) + 1)
		if s.Cost > envelope {
			t.Fatalf("cost %v exceeds O(B log n) envelope %v (B=%v, n=%v)", s.Cost, envelope, planted, n)
		}
	}
}

// TestModelUtilitiesSubmodular checks Lemmas 2.2.2 and 2.3.2 on the real
// scheduling utilities of random instances.
func TestModelUtilitiesSubmodular(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 10; trial++ {
		ins := randomInstance(rng, 2, 8, 5)
		model, err := NewModel(ins)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range []submodular.Function{model.MatchingUtility(), model.WeightedUtility()} {
			if err := submodular.CheckSubmodular(f, rng, 100, 1e-9); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if err := submodular.CheckMonotone(f, rng, 100, 1e-9); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}

func TestPrizeCollecting(t *testing.T) {
	ins := tinyInstance()
	ins.Jobs[0].Value = 10
	ins.Jobs[1].Value = 1
	ins.Jobs[2].Value = 1
	z := 10.0
	eps := 0.25
	s, err := PrizeCollecting(ins, z, Options{Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	if s.Value < (1-eps)*z {
		t.Fatalf("value %v below (1-eps)Z = %v", s.Value, (1-eps)*z)
	}
	if err := s.Validate(ins); err != nil {
		t.Fatal(err)
	}
}

func TestPrizeCollectingZeroZ(t *testing.T) {
	ins := tinyInstance()
	s, err := PrizeCollecting(ins, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Scheduled != 0 || s.Cost != 0 {
		t.Fatalf("Z=0 should schedule nothing: %+v", s)
	}
	if err := s.Validate(ins); err != nil {
		t.Fatal(err)
	}
}

func TestPrizeCollectingUnreachable(t *testing.T) {
	ins := tinyInstance() // total value 3
	_, err := PrizeCollecting(ins, 100, Options{})
	if !errors.Is(err, ErrValueUnreachable) {
		t.Fatalf("err = %v, want ErrValueUnreachable", err)
	}
}

func TestPrizeCollectingExactReachesZ(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 15; trial++ {
		ins := randomInstance(rng, 2, 10, 6)
		total := 0.0
		for _, j := range ins.Jobs {
			total += j.Value
		}
		z := total * 0.7
		s, err := PrizeCollectingExact(ins, z, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if s.Value < z-1e-9 {
			t.Fatalf("value %v < Z %v", s.Value, z)
		}
		if err := s.Validate(ins); err != nil {
			t.Fatal(err)
		}
	}
}

func TestUnavailableSlotsAvoided(t *testing.T) {
	base := power.Affine{Alpha: 1, Rate: 1}
	u := power.NewUnavailable(base, 10)
	// Block proc 0 entirely during [0,5); job can run on proc 1 instead.
	for tt := 0; tt < 5; tt++ {
		u.Block(0, tt)
	}
	ins := &Instance{
		Procs:   2,
		Horizon: 10,
		Jobs: []Job{
			{Value: 1, Allowed: append(window(0, 0, 5), window(1, 0, 5)...)},
		},
		Cost: u,
	}
	s, err := ScheduleAll(ins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Assignment[0].Proc != 1 {
		t.Fatalf("job scheduled on blocked processor: %+v", s.Assignment[0])
	}
	if err := s.Validate(ins); err != nil {
		t.Fatal(err)
	}
}

func TestMultiIntervalJob(t *testing.T) {
	// A job with two disjoint windows — the multi-interval generality of
	// Definition 2 that one-interval baselines cannot express.
	ins := &Instance{
		Procs:   1,
		Horizon: 20,
		Jobs: []Job{
			{Value: 1, Allowed: append(window(0, 1, 3), window(0, 15, 17)...)},
			{Value: 1, Allowed: window(0, 15, 17)},
			{Value: 1, Allowed: window(0, 16, 18)},
		},
		Cost: power.Affine{Alpha: 5, Rate: 1},
	}
	s, err := ScheduleAll(ins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(ins); err != nil {
		t.Fatal(err)
	}
	if s.Scheduled != 3 {
		t.Fatalf("scheduled %d of 3", s.Scheduled)
	}
	// One awake interval around [15,18) hosts all three jobs if job 0 uses
	// a late slot; the greedy should not pay a second α=5 wake at t=1.
	if len(s.Intervals) != 1 {
		t.Logf("intervals: %v (cost %v)", s.Intervals, s.Cost)
	}
	if s.Cost > 13 {
		t.Fatalf("cost %v; combining into one interval costs at most 8+... ", s.Cost)
	}
}

func TestCandidatePolicies(t *testing.T) {
	ins := tinyInstance()
	for _, policy := range []CandidatePolicy{EventPoints, SingleSlots, AllPairs} {
		s, err := ScheduleAll(ins, Options{Policy: policy})
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if s.Scheduled != 3 {
			t.Fatalf("%v: scheduled %d", policy, s.Scheduled)
		}
		if err := s.Validate(ins); err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
	}
}

func TestAllPairsGuard(t *testing.T) {
	ins := &Instance{
		Procs: 10, Horizon: 5000,
		Jobs: []Job{{Allowed: []SlotKey{{0, 0}}}},
		Cost: power.Affine{Alpha: 1, Rate: 1},
	}
	_, err := ScheduleAll(ins, Options{Policy: AllPairs})
	if err == nil {
		t.Fatal("AllPairs on huge horizon should refuse")
	}
}

func TestPolicyString(t *testing.T) {
	if EventPoints.String() != "event-points" || SingleSlots.String() != "single-slots" ||
		AllPairs.String() != "all-pairs" || CandidatePolicy(9).String() != "policy(9)" {
		t.Fatal("CandidatePolicy.String mismatch")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	ins := tinyInstance()
	s, err := ScheduleAll(ins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: move an assignment outside its allowed window.
	bad := *s
	bad.Assignment = append([]SlotKey(nil), s.Assignment...)
	bad.Assignment[0] = SlotKey{Proc: 0, Time: 9}
	if err := bad.Validate(ins); err == nil {
		t.Fatal("validator missed disallowed slot")
	}
	// Corrupt: wrong cost.
	bad2 := *s
	bad2.Cost += 5
	if err := bad2.Validate(ins); err == nil {
		t.Fatal("validator missed cost mismatch")
	}
	// Corrupt: duplicate slot.
	bad3 := *s
	bad3.Assignment = append([]SlotKey(nil), s.Assignment...)
	bad3.Assignment[1] = bad3.Assignment[0]
	if err := bad3.Validate(ins); err == nil {
		t.Fatal("validator missed slot collision")
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Proc: 1, Start: 2, End: 5}
	if iv.Length() != 3 {
		t.Fatal("Length")
	}
	if !iv.Contains(1, 4) || iv.Contains(1, 5) || iv.Contains(0, 3) {
		t.Fatal("Contains")
	}
	if iv.String() != "P1[2,5)" {
		t.Fatalf("String = %q", iv.String())
	}
}

func BenchmarkScheduleAll(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ins := randomInstance(rng, 3, 40, 25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ScheduleAll(ins, Options{Fast: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrizeCollecting(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ins := randomInstance(rng, 3, 40, 25)
	total := 0.0
	for _, j := range ins.Jobs {
		total += j.Value
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PrizeCollecting(ins, total*0.6, Options{Eps: 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}
