// Package budget implements submodular maximization with budget
// constraints — the thesis's foundational technique (§2.1, Lemma 2.1.2).
//
// Given explicitly listed allowable subsets S₁,…,Sₘ with costs C₁,…,Cₘ, a
// monotone submodular utility F, and a utility threshold x, Greedy
// repeatedly picks the subset maximizing
//
//	(min(x, F(S ∪ Sᵢ)) − F(S)) / Cᵢ
//
// and stops once the utility reaches (1−ε)x. Lemma 2.1.2 proves that if
// some collection of cost B achieves utility x, the greedy's cost is
// O(B·log(1/ε)). Set Cover is the special case of singleton subsets and a
// coverage utility, with ε below 1/(number of elements).
//
// LazyGreedy is the classical lazy-evaluation variant: stale marginal
// ratios are kept in a max-heap and only re-evaluated when popped, which is
// sound because capped marginals of a monotone submodular function can only
// shrink as the solution grows. Both variants pick identical subsets (ties
// broken by index); they differ only in oracle-call counts, which ablation
// A1 measures.
package budget

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/bitset"
	"repro/internal/submodular"
)

// Subset is one allowable subset with its cost (Definition 1).
type Subset struct {
	Items *bitset.Set
	Cost  float64
	Label string // optional, for diagnostics
}

// Problem is an instance of submodular maximization with budget
// constraints: reach utility Threshold over F using the allowable Subsets.
type Problem struct {
	F         submodular.Function
	Subsets   []Subset
	Threshold float64
}

// Options tune the greedy.
type Options struct {
	// Eps is the bicriteria slack ε: stop at utility (1−ε)·Threshold.
	// Must be in (0, 1].
	Eps float64
	// Parallel evaluates candidate subsets concurrently in plain Greedy.
	// It forces from-scratch Eval oracles: incremental probes share
	// scratch state and cannot run concurrently.
	Parallel bool
	// PlainEval disables the incremental-oracle fast path even when F
	// provides one (submodular.AsIncremental), recomputing every probe
	// from scratch — the ablation A1/A3 baseline.
	PlainEval bool
}

// Step records one greedy pick, forming the trace used by the phase
// accounting of Lemma 2.1.2's proof.
type Step struct {
	Subset  int     // index into Problem.Subsets
	Gain    float64 // capped utility gain of this pick
	Ratio   float64 // Gain / Cost at pick time
	Cost    float64 // cumulative cost after this pick
	Utility float64 // capped utility after this pick
}

// Result is the output of a greedy run.
type Result struct {
	Chosen  []int // picked subset indices, in pick order
	Union   *bitset.Set
	Utility float64 // F of the union (uncapped)
	Cost    float64
	Evals   int64 // oracle calls consumed
	Trace   []Step
}

// Phases buckets the trace into the proof's phases: phase i covers picks
// made while utility < (1−1/2^i)·x. It returns the cost spent per phase.
func (r *Result) Phases(threshold float64) []float64 {
	var phases []float64
	phase := 1
	bound := func(i int) float64 { return (1 - 1/math.Pow(2, float64(i))) * threshold }
	spent := 0.0
	prevCost := 0.0
	for _, st := range r.Trace {
		for st.Utility >= bound(phase) && phase < 64 {
			phases = append(phases, spent)
			spent = 0
			phase++
		}
		spent += st.Cost - prevCost
		prevCost = st.Cost
	}
	phases = append(phases, spent)
	return phases
}

// ErrInfeasible is returned when no remaining subset improves utility but
// the target has not been reached; the instance cannot achieve the
// threshold with the given subsets.
var ErrInfeasible = errors.New("budget: threshold unreachable with given subsets")

const tol = 1e-12

// Greedy runs the algorithm of Lemma 2.1.2. On success the result has
// capped utility at least (1−ε)·Threshold.
//
// When F provides an incremental oracle (submodular.AsIncremental) and
// neither Parallel nor PlainEval is set, every probe F(S ∪ Sᵢ) is answered
// by the stateful oracle's Gain instead of a from-scratch Eval. For
// integer-valued oracles (coverage with unit weights, the matching
// utilities) the pick sequence is bit-identical to the plain path; for
// float-valued oracles the two paths sum the same terms in different
// orders, so picks can differ at exact floating-point ties.
func Greedy(p Problem, opts Options) (*Result, error) {
	if err := validate(p, opts); err != nil {
		return nil, err
	}
	f := submodular.NewCounting(p.F)
	x := p.Threshold
	target := (1 - opts.Eps) * x

	workers := 1
	if opts.Parallel {
		workers = runtime.GOMAXPROCS(0)
	}
	// Gate on the option, not the resolved worker count: on a 1-CPU
	// machine Parallel still means "use the from-scratch Eval path", so
	// results stay identical across machines.
	inc, itemsOf := incrementalFor(f, p.Subsets, opts, !opts.Parallel)

	cur := bitset.New(p.F.Universe())
	var scratch *bitset.Set // plain-path probe buffer; unused incrementally
	incBase := 0.0          // F(S) of the committed base; loop-invariant per round
	if inc != nil {
		incBase = inc.Value()
	} else {
		scratch = bitset.New(p.F.Universe())
	}
	curU := math.Min(x, utilityOf(f, inc, cur))
	res := &Result{Union: cur}
	picked := make([]bool, len(p.Subsets))

	for curU < target-tol {
		best, bestGain, bestRatio := -1, 0.0, math.Inf(-1)
		consider := func(i int) (float64, float64, bool) {
			var v float64
			if inc != nil {
				v = math.Min(x, incBase+inc.Gain(itemsOf[i]))
			} else {
				v = math.Min(x, evalUnion(f, scratch, cur, p.Subsets[i].Items))
			}
			gain := v - curU
			if gain <= tol {
				return 0, 0, false
			}
			ratio := math.Inf(1)
			if p.Subsets[i].Cost > tol {
				ratio = gain / p.Subsets[i].Cost
			}
			return gain, ratio, true
		}
		if workers == 1 {
			for i := range p.Subsets {
				if picked[i] {
					continue
				}
				gain, ratio, ok := consider(i)
				if ok && ratio > bestRatio {
					best, bestGain, bestRatio = i, gain, ratio
				}
			}
		} else {
			best, bestGain, bestRatio = parallelBest(p, f, cur, curU, x, picked, workers)
		}
		if best == -1 {
			res.Utility = utilityOf(f, inc, cur)
			res.Evals = f.Calls()
			return res, fmt.Errorf("%w: stuck at utility %g of %g", ErrInfeasible, curU, x)
		}
		picked[best] = true
		if inc != nil {
			inc.Commit(itemsOf[best])
			incBase = inc.Value()
		}
		cur.UnionWith(p.Subsets[best].Items)
		curU += bestGain
		res.Chosen = append(res.Chosen, best)
		res.Cost += p.Subsets[best].Cost
		res.Trace = append(res.Trace, Step{
			Subset: best, Gain: bestGain, Ratio: bestRatio, Cost: res.Cost, Utility: curU,
		})
	}
	res.Utility = utilityOf(f, inc, cur)
	res.Evals = f.Calls()
	return res, nil
}

// incrementalFor sets up the incremental fast path: a fresh stateful
// oracle plus each subset's materialized item list (extracted once so
// probes don't re-walk bitsets every round). Returns (nil, nil) when the
// plain Eval path must be used.
func incrementalFor(f submodular.Function, subs []Subset, opts Options, serial bool) (submodular.Incremental, [][]int) {
	if opts.PlainEval || !serial {
		return nil, nil
	}
	inc, ok := submodular.AsIncremental(f)
	if !ok {
		return nil, nil
	}
	itemsOf := make([][]int, len(subs))
	for i := range subs {
		itemsOf[i] = subs[i].Items.Elements()
	}
	return inc, itemsOf
}

// utilityOf returns the uncapped F of the current union: the committed
// value when running incrementally (cur mirrors the oracle's base set by
// construction), a fresh Eval otherwise.
func utilityOf(f submodular.Function, inc submodular.Incremental, cur *bitset.Set) float64 {
	if inc != nil {
		return inc.Value()
	}
	return f.Eval(cur)
}

// parallelBest scans candidates across workers; ties resolve to the lowest
// index so that parallel and serial runs pick identical subsets.
func parallelBest(p Problem, f submodular.Function, cur *bitset.Set, curU, x float64, picked []bool, workers int) (int, float64, float64) {
	type cand struct {
		idx   int
		gain  float64
		ratio float64
	}
	results := make([]cand, workers)
	var wg sync.WaitGroup
	chunk := (len(p.Subsets) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(p.Subsets) {
			hi = len(p.Subsets)
		}
		if lo >= hi {
			results[w] = cand{idx: -1, ratio: math.Inf(-1)}
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			local := cand{idx: -1, ratio: math.Inf(-1)}
			scratch := cur.Clone()
			for i := lo; i < hi; i++ {
				if picked[i] {
					continue
				}
				scratch.CopyFrom(cur)
				scratch.UnionWith(p.Subsets[i].Items)
				v := math.Min(x, f.Eval(scratch))
				gain := v - curU
				if gain <= tol {
					continue
				}
				ratio := math.Inf(1)
				if p.Subsets[i].Cost > tol {
					ratio = gain / p.Subsets[i].Cost
				}
				if ratio > local.ratio {
					local = cand{idx: i, gain: gain, ratio: ratio}
				}
			}
			results[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	best := cand{idx: -1, ratio: math.Inf(-1)}
	for _, c := range results {
		if c.idx == -1 {
			continue
		}
		if c.ratio > best.ratio || (c.ratio == best.ratio && best.idx != -1 && c.idx < best.idx) {
			best = c
		}
	}
	return best.idx, best.gain, best.ratio
}

// evalUnion evaluates F(cur ∪ items) in the caller-provided scratch set,
// so the plain-Eval probe loop allocates nothing per candidate.
func evalUnion(f submodular.Function, scratch, cur, items *bitset.Set) float64 {
	scratch.CopyFrom(cur)
	scratch.UnionWith(items)
	return f.Eval(scratch)
}

func validate(p Problem, opts Options) error {
	if opts.Eps <= 0 || opts.Eps > 1 {
		return fmt.Errorf("budget: Eps must be in (0,1], got %g", opts.Eps)
	}
	if p.Threshold < 0 {
		return fmt.Errorf("budget: negative threshold %g", p.Threshold)
	}
	n := p.F.Universe()
	for i, s := range p.Subsets {
		if s.Items.Universe() != n {
			return fmt.Errorf("budget: subset %d universe %d, want %d", i, s.Items.Universe(), n)
		}
		if s.Cost < 0 {
			return fmt.Errorf("budget: subset %d has negative cost %g", i, s.Cost)
		}
	}
	return nil
}

// lazyEntry is a heap entry holding a stale ratio upper bound.
type lazyEntry struct {
	idx   int
	ratio float64
	gain  float64
	round int // greedy round when the ratio was computed
}

type lazyHeap []lazyEntry

func (h lazyHeap) Len() int { return len(h) }
func (h lazyHeap) Less(i, j int) bool {
	if h[i].ratio != h[j].ratio {
		return h[i].ratio > h[j].ratio
	}
	return h[i].idx < h[j].idx
}
func (h lazyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *lazyHeap) Push(x interface{}) { *h = append(*h, x.(lazyEntry)) }
func (h *lazyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// LazyGreedy computes the same solution as Greedy with (typically far)
// fewer oracle calls, using stale-ratio lazy evaluation. Like Greedy it
// takes the incremental fast path when F provides one, compounding the
// two savings: fewer probes, and each probe cheaper.
func LazyGreedy(p Problem, opts Options) (*Result, error) {
	if err := validate(p, opts); err != nil {
		return nil, err
	}
	f := submodular.NewCounting(p.F)
	x := p.Threshold
	target := (1 - opts.Eps) * x

	inc, itemsOf := incrementalFor(f, p.Subsets, opts, true)

	cur := bitset.New(p.F.Universe())
	var scratch *bitset.Set // plain-path probe buffer; unused incrementally
	incBase := 0.0          // F(S) of the committed base; changes only on commit
	if inc != nil {
		incBase = inc.Value()
	} else {
		scratch = bitset.New(p.F.Universe())
	}
	curU := math.Min(x, utilityOf(f, inc, cur))
	res := &Result{Union: cur}

	probe := func(i int) (gain, ratio float64, ok bool) {
		var v float64
		if inc != nil {
			v = math.Min(x, incBase+inc.Gain(itemsOf[i]))
		} else {
			v = math.Min(x, evalUnion(f, scratch, cur, p.Subsets[i].Items))
		}
		gain = v - curU
		if gain <= tol {
			return 0, 0, false
		}
		ratio = math.Inf(1)
		if p.Subsets[i].Cost > tol {
			ratio = gain / p.Subsets[i].Cost
		}
		return gain, ratio, true
	}

	h := make(lazyHeap, 0, len(p.Subsets))
	round := 0
	for i := range p.Subsets {
		if gain, ratio, ok := probe(i); ok {
			h = append(h, lazyEntry{idx: i, ratio: ratio, gain: gain, round: round})
		}
	}
	heap.Init(&h)

	for curU < target-tol {
		var pick lazyEntry
		found := false
		for h.Len() > 0 {
			top := h[0]
			if top.round == round {
				pick = top
				heap.Pop(&h)
				found = true
				break
			}
			// Stale: re-evaluate against the current solution.
			heap.Pop(&h)
			gain, ratio, ok := probe(top.idx)
			if !ok {
				continue // never useful again: capped marginals only shrink
			}
			heap.Push(&h, lazyEntry{idx: top.idx, ratio: ratio, gain: gain, round: round})
		}
		if !found {
			res.Utility = utilityOf(f, inc, cur)
			res.Evals = f.Calls()
			return res, fmt.Errorf("%w: stuck at utility %g of %g", ErrInfeasible, curU, x)
		}
		if inc != nil {
			inc.Commit(itemsOf[pick.idx])
			incBase = inc.Value()
		}
		cur.UnionWith(p.Subsets[pick.idx].Items)
		curU += pick.gain
		round++
		res.Chosen = append(res.Chosen, pick.idx)
		res.Cost += p.Subsets[pick.idx].Cost
		res.Trace = append(res.Trace, Step{
			Subset: pick.idx, Gain: pick.gain, Ratio: pick.ratio, Cost: res.Cost, Utility: curU,
		})
	}
	res.Utility = utilityOf(f, inc, cur)
	res.Evals = f.Calls()
	return res, nil
}
