#!/bin/sh
# Fails the CI multicore perf job when the W4 worker-sweep speedup drops
# below the committed floor (scripts/multicore_floor.txt) — the teeth the
# informational "W4 speedup report" step never had.
#
# Usage: scripts/multicore_ratchet.sh BENCH_multicore_ci.json [floor.txt]
#
# The snapshot's own environment metadata (bench_snapshot.sh records
# num_cpu per capture) gates the check: on runners with fewer than 4 CPUs
# the W4 sweep only measures goroutine coordination overhead — speedup is
# structurally ~1.0x there, so the ratchet skips with exit 0 instead of
# producing a false failure. The dev-container snapshots (num_cpu 1) are
# therefore never gated; only genuinely multi-core runs are held to the
# floor.
#
# The metric is the geometric mean of serial-ns ÷ W4-ns over the four
# worker-sweep benchmark ids, matching the informational report. A
# missing benchmark (renamed id, filtered run) is a hard failure — a
# ratchet that silently measures nothing is worse than none.
set -eu
snap="${1:?usage: multicore_ratchet.sh BENCH_multicore_ci.json [floor.txt]}"
floor_file="${2:-scripts/multicore_floor.txt}"

floor="$(grep -v '^#' "$floor_file" | grep -v '^[[:space:]]*$' | head -n 1)"
if [ -z "$floor" ]; then
    echo "multicore_ratchet: no floor value in $floor_file" >&2
    exit 1
fi

num_cpu="$(grep -o '"num_cpu": *[0-9]*' "$snap" | head -n 1 | grep -o '[0-9]*$' || echo 1)"
if [ "${num_cpu:-1}" -lt 4 ]; then
    echo "multicore_ratchet: snapshot env num_cpu=${num_cpu:-1} < 4 — W4 speedup only measures coordination overhead; skipping."
    exit 0
fi

awk -v floor="$floor" '
/"name":/ {
    split($0, p, "\""); name = p[4]
    if (match($0, /"ns_per_op": *[0-9.]+/)) {
        s = substr($0, RSTART, RLENGTH); sub(/^[^:]*: */, "", s)
        ns[name] = s + 0
    }
}
END {
    split("E2ScheduleAll E3PrizeCollecting E4ExactThreshold A3IncrementalMatching", ids, " ")
    logsum = 0
    for (i = 1; i <= 4; i++) {
        id = ids[i]
        base = ns["Benchmark" id]; w4 = ns["Benchmark" id "W4"]
        if (base <= 0 || w4 <= 0) {
            printf "multicore_ratchet: missing benchmark pair for %s in snapshot\n", id > "/dev/stderr"
            exit 1
        }
        speedup = base / w4
        logsum += log(speedup)
        printf "%-26s serial %12.0f ns  W4 %12.0f ns  speedup %.2fx\n", id, base, w4, speedup
    }
    geomean = exp(logsum / 4)
    printf "geomean W4 speedup %.3fx, floor %.3fx\n", geomean, floor
    if (geomean < floor) {
        printf "multicore_ratchet: FAIL — geomean %.3fx below floor %.3fx (see scripts/multicore_floor.txt)\n", geomean, floor > "/dev/stderr"
        exit 1
    }
}
' "$snap"
