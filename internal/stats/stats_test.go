package stats

import (
	"math"
	"strings"
	"testing"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || !almostEqual(s.Mean, 2.5, 1e-12) {
		t.Fatalf("Summarize mean = %+v", s)
	}
	if !almostEqual(s.Stddev, math.Sqrt(5.0/3.0), 1e-12) {
		t.Fatalf("Stddev = %v", s.Stddev)
	}
	if s.Min != 1 || s.Max != 4 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.CI95() != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Stddev != 0 || s.CI95() != 0 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestCI95Shrinks(t *testing.T) {
	small := Summarize([]float64{1, 2, 3, 4})
	big := Summarize(make([]float64, 0, 400))
	var xs []float64
	for i := 0; i < 100; i++ {
		xs = append(xs, 1, 2, 3, 4)
	}
	big = Summarize(xs)
	if big.CI95() >= small.CI95() {
		t.Fatalf("CI95 did not shrink with sample size: %v vs %v", big.CI95(), small.CI95())
	}
}

func TestMedianQuantile(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("Median odd = %v", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("Median even = %v", m)
	}
	if q := Quantile([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.9); q != 9 {
		t.Fatalf("Quantile 0.9 = %v", q)
	}
	if q := Quantile([]float64{5}, 0.5); q != 5 {
		t.Fatalf("Quantile single = %v", q)
	}
	if q := Quantile(nil, 0.5); q != 0 {
		t.Fatalf("Quantile empty = %v", q)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{3, "3"},
		{0.12345, "0.1235"},
		{12.345, "12.35"},
		{math.Inf(1), "inf"},
		{math.Inf(-1), "-inf"},
		{math.NaN(), "NaN"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("demo", "a", "b")
	tbl.AddRow("x", 1.5)
	tbl.AddRow("longer", 2)
	tbl.Note = "a note"
	out := tbl.String()
	for _, want := range []string{"### demo", "| a ", "| b", "longer", "1.50", "a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	// Header separator present.
	if !strings.Contains(out, "|---") && !strings.Contains(out, "|----") {
		t.Errorf("missing separator row:\n%s", out)
	}
}

func TestTableRaggedRow(t *testing.T) {
	tbl := NewTable("ragged", "a", "b", "c")
	tbl.AddRow("only-one")
	out := tbl.String()
	if !strings.Contains(out, "only-one") {
		t.Fatalf("ragged row dropped:\n%s", out)
	}
}
