package experiments

import (
	"repro/internal/bitset"
	"repro/internal/setcover"
	"repro/internal/submodular"
)

// toCoverage views a set-cover instance as the coverage utility whose
// universe is the set indices.
func toCoverage(ins *setcover.Instance) *submodular.Coverage {
	return submodular.NewCoverage(ins.N, ins.Sets, nil)
}

// singleton returns the one-element subset {i} over a universe of n items.
func singleton(n, i int) *bitset.Set {
	return bitset.FromSlice(n, []int{i})
}
