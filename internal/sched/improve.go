package sched

import "sort"

// Improve applies cost-decreasing local moves to a feasible schedule and
// returns an improved copy (the input is not modified):
//
//  1. drop — remove any interval whose assigned slots are covered by the
//     remaining intervals;
//  2. merge — replace two same-processor intervals by their span whenever
//     the cost oracle prices the span below their sum (profitable under
//     affine costs when the gap is shorter than α/rate, and exactly the
//     "combine awake intervals" behaviour §1 promises the model enables).
//
// Moves repeat to a fixed point. The result never costs more than the
// input and remains feasible for the same assignment.
func Improve(ins *Instance, s *Schedule) *Schedule {
	out := &Schedule{
		Intervals:  append([]Interval(nil), s.Intervals...),
		Assignment: append([]SlotKey(nil), s.Assignment...),
		Value:      s.Value,
		Scheduled:  s.Scheduled,
		Evals:      s.Evals,
	}
	for {
		dropped := dropRedundant(ins, out)
		merged := mergeProfitable(ins, out)
		if !dropped && !merged {
			break
		}
	}
	out.Cost = 0
	for _, iv := range out.Intervals {
		out.Cost += ins.Cost.Cost(iv.Proc, iv.Start, iv.End)
	}
	return out
}

// neededSlots returns the assigned slots grouped by processor.
func neededSlots(s *Schedule) map[int][]int {
	byProc := map[int][]int{}
	for _, a := range s.Assignment {
		if a != Unassigned {
			byProc[a.Proc] = append(byProc[a.Proc], a.Time)
		}
	}
	for _, ts := range byProc {
		sort.Ints(ts)
	}
	return byProc
}

// covered reports whether every slot in byProc is inside some interval
// whose index is not marked removed (removed may be nil).
func covered(intervals []Interval, removed []bool, byProc map[int][]int) bool {
	for proc, times := range byProc {
		for _, t := range times {
			ok := false
			for i, iv := range intervals {
				if (removed == nil || !removed[i]) && iv.Contains(proc, t) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
	}
	return true
}

// dropRedundant removes intervals not needed for coverage, cheapest-last
// so expensive redundancy goes first. Returns true if anything changed.
func dropRedundant(ins *Instance, s *Schedule) bool {
	byProc := neededSlots(s)
	// Try dropping intervals in decreasing cost order.
	order := make([]int, len(s.Intervals))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca := ins.Cost.Cost(s.Intervals[order[a]].Proc, s.Intervals[order[a]].Start, s.Intervals[order[a]].End)
		cb := ins.Cost.Cost(s.Intervals[order[b]].Proc, s.Intervals[order[b]].Start, s.Intervals[order[b]].End)
		return ca > cb
	})
	changed := false
	removed := make([]bool, len(s.Intervals))
	for _, idx := range order {
		if ins.Cost.Cost(s.Intervals[idx].Proc, s.Intervals[idx].Start, s.Intervals[idx].End) <= 0 {
			continue // free intervals never hurt
		}
		removed[idx] = true
		if covered(s.Intervals, removed, byProc) {
			changed = true
		} else {
			removed[idx] = false
		}
	}
	if changed {
		var kept []Interval
		for i, iv := range s.Intervals {
			if !removed[i] {
				kept = append(kept, iv)
			}
		}
		s.Intervals = kept
	}
	return changed
}

// mergeProfitable merges one profitable same-processor pair per call.
// Returns true if a merge happened.
func mergeProfitable(ins *Instance, s *Schedule) bool {
	const tol = 1e-12
	for i := 0; i < len(s.Intervals); i++ {
		for j := i + 1; j < len(s.Intervals); j++ {
			a, b := s.Intervals[i], s.Intervals[j]
			if a.Proc != b.Proc {
				continue
			}
			span := Interval{Proc: a.Proc, Start: minInt(a.Start, b.Start), End: maxInt(a.End, b.End)}
			spanCost := ins.Cost.Cost(span.Proc, span.Start, span.End)
			pairCost := ins.Cost.Cost(a.Proc, a.Start, a.End) + ins.Cost.Cost(b.Proc, b.Start, b.End)
			if spanCost < pairCost-tol {
				s.Intervals[i] = span
				s.Intervals = append(s.Intervals[:j], s.Intervals[j+1:]...)
				return true
			}
		}
	}
	return false
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
