// Package schedexact provides exact optima and previous-work baselines for
// small scheduling instances.
//
// The exact solvers enumerate job-to-slot assignments and cover each
// processor's chosen slots with a minimum-cost set of event-point awake
// intervals (weighted interval covering by dynamic programming). Restricting
// awake intervals to event points is lossless for monotone cost models
// (shrinking an interval onto its outermost used slots never raises its
// cost), which covers every model used in the experiments. The experiments
// use these optima as the denominator of approximation ratios
// (Theorem 2.2.1/2.3.x shapes).
//
// The baselines reproduce the prior work the thesis compares against:
// AlwaysOn (no power management), PerJob (wake per job — the opposite
// extreme), and MergeGaps (schedule first, then merge short gaps — the
// 1+α-style heuristic of Demaine et al. [13], valid for affine costs).
package schedexact

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/bipartite"
	"repro/internal/sched"
)

// ErrBudgetExceeded is returned when the exact search would explore more
// leaves than the caller's limit.
var ErrBudgetExceeded = errors.New("schedexact: search budget exceeded")

// Optimal returns a minimum-cost schedule of all jobs, or
// sched.ErrUnschedulable. limit caps the number of assignment leaves
// explored (0 means 5e6).
func Optimal(ins *sched.Instance, limit int) (*sched.Schedule, error) {
	return optimal(ins, math.Inf(-1), limit, true)
}

// OptimalPrize returns a minimum-cost schedule of total value at least z
// (not necessarily all jobs), or sched.ErrValueUnreachable. limit caps the
// number of assignment leaves explored (0 means 5e6).
func OptimalPrize(ins *sched.Instance, z float64, limit int) (*sched.Schedule, error) {
	s, err := optimal(ins, z, limit, false)
	if errors.Is(err, sched.ErrUnschedulable) {
		return nil, fmt.Errorf("%w: no subset reaches value %g", sched.ErrValueUnreachable, z)
	}
	return s, err
}

func optimal(ins *sched.Instance, z float64, limit int, all bool) (*sched.Schedule, error) {
	if limit <= 0 {
		limit = 5_000_000
	}
	n := len(ins.Jobs)
	if n > 62 {
		return nil, fmt.Errorf("schedexact: %d jobs is beyond exact range", n)
	}
	// Deduplicate Allowed lists per job.
	allowed := make([][]sched.SlotKey, n)
	for j, job := range ins.Jobs {
		seen := map[sched.SlotKey]bool{}
		for _, s := range job.Allowed {
			if !seen[s] {
				seen[s] = true
				allowed[j] = append(allowed[j], s)
			}
		}
	}
	best := math.Inf(1)
	var bestAssign []sched.SlotKey
	cur := make([]sched.SlotKey, n)
	used := map[sched.SlotKey]bool{}
	leaves := 0
	var budgetErr error

	var rec func(j int, value float64)
	rec = func(j int, value float64) {
		if budgetErr != nil {
			return
		}
		if j == n {
			leaves++
			if leaves > limit {
				budgetErr = ErrBudgetExceeded
				return
			}
			if !all && value < z {
				return
			}
			cost, ok := coverCost(ins, cur, best)
			if ok && cost < best {
				best = cost
				bestAssign = append([]sched.SlotKey(nil), cur...)
			}
			return
		}
		if !all {
			cur[j] = sched.Unassigned
			rec(j+1, value)
		}
		for _, s := range allowed[j] {
			if used[s] {
				continue
			}
			used[s] = true
			cur[j] = s
			if all {
				rec(j+1, value)
			} else {
				rec(j+1, value+ins.Jobs[j].Value)
			}
			used[s] = false
		}
		cur[j] = sched.Unassigned
	}
	rec(0, 0)
	if budgetErr != nil {
		return nil, budgetErr
	}
	if bestAssign == nil {
		return nil, sched.ErrUnschedulable
	}
	return buildFromAssignment(ins, bestAssign)
}

// coverCost computes the minimum cost of awake intervals covering the
// assigned slots, processor by processor, pruning once the bound is hit.
func coverCost(ins *sched.Instance, assign []sched.SlotKey, bound float64) (float64, bool) {
	total := 0.0
	byProc := slotsByProc(ins.Procs, assign)
	for proc, times := range byProc {
		if len(times) == 0 {
			continue
		}
		total += coverProc(ins, proc, times)
		if total >= bound {
			return total, total < bound
		}
	}
	return total, true
}

// coverProc solves weighted interval covering over the sorted occupied
// times of one processor: dp[i] = min cost covering the first i slots,
// dp[i] = min_j dp[j] + cost(proc, t_{j+1}, t_i + 1).
func coverProc(ins *sched.Instance, proc int, times []int) float64 {
	k := len(times)
	dp := make([]float64, k+1)
	for i := 1; i <= k; i++ {
		dp[i] = math.Inf(1)
		for j := 0; j < i; j++ {
			c := ins.Cost.Cost(proc, times[j], times[i-1]+1)
			if dp[j]+c < dp[i] {
				dp[i] = dp[j] + c
			}
		}
	}
	return dp[k]
}

// coverIntervals reconstructs one optimal covering for a processor.
func coverIntervals(ins *sched.Instance, proc int, times []int) []sched.Interval {
	k := len(times)
	if k == 0 {
		return nil
	}
	dp := make([]float64, k+1)
	from := make([]int, k+1)
	for i := 1; i <= k; i++ {
		dp[i] = math.Inf(1)
		for j := 0; j < i; j++ {
			c := ins.Cost.Cost(proc, times[j], times[i-1]+1)
			if dp[j]+c < dp[i] {
				dp[i] = dp[j] + c
				from[i] = j
			}
		}
	}
	var out []sched.Interval
	for i := k; i > 0; i = from[i] {
		j := from[i]
		out = append(out, sched.Interval{Proc: proc, Start: times[j], End: times[i-1] + 1})
	}
	return out
}

func slotsByProc(procs int, assign []sched.SlotKey) [][]int {
	byProc := make([][]int, procs)
	for _, s := range assign {
		if s == sched.Unassigned {
			continue
		}
		byProc[s.Proc] = append(byProc[s.Proc], s.Time)
	}
	for _, times := range byProc {
		sort.Ints(times)
	}
	return byProc
}

// buildFromAssignment assembles a validated Schedule from a fixed
// assignment, covering slots optimally.
func buildFromAssignment(ins *sched.Instance, assign []sched.SlotKey) (*sched.Schedule, error) {
	byProc := slotsByProc(ins.Procs, assign)
	var intervals []sched.Interval
	cost := 0.0
	for proc, times := range byProc {
		for _, iv := range coverIntervals(ins, proc, times) {
			intervals = append(intervals, iv)
			cost += ins.Cost.Cost(iv.Proc, iv.Start, iv.End)
		}
	}
	value, scheduled := 0.0, 0
	for j, s := range assign {
		if s != sched.Unassigned {
			value += ins.Jobs[j].Value
			scheduled++
		}
	}
	s := &sched.Schedule{
		Intervals: intervals, Assignment: assign,
		Cost: cost, Value: value, Scheduled: scheduled,
	}
	if err := s.Validate(ins); err != nil {
		return nil, fmt.Errorf("schedexact: internal inconsistency: %w", err)
	}
	return s, nil
}

// matchingAssignment computes any full assignment via maximum matching,
// used by the baselines. Returns nil if not all jobs fit.
func matchingAssignment(ins *sched.Instance) []sched.SlotKey {
	model, err := sched.NewModel(ins)
	if err != nil {
		return nil
	}
	size, _, matchY := bipartite.MaxMatching(model.G, nil)
	if size < len(ins.Jobs) {
		return nil
	}
	assign := make([]sched.SlotKey, len(ins.Jobs))
	for j := range assign {
		assign[j] = model.Slots[matchY[j]]
	}
	return assign
}

// AlwaysOn is the no-power-management baseline: every processor that hosts
// at least one job stays awake for the whole horizon.
func AlwaysOn(ins *sched.Instance) (*sched.Schedule, error) {
	assign := matchingAssignment(ins)
	if assign == nil {
		return nil, sched.ErrUnschedulable
	}
	usedProc := make([]bool, ins.Procs)
	for _, s := range assign {
		usedProc[s.Proc] = true
	}
	var intervals []sched.Interval
	cost, value := 0.0, 0.0
	for p, used := range usedProc {
		if used {
			iv := sched.Interval{Proc: p, Start: 0, End: ins.Horizon}
			intervals = append(intervals, iv)
			cost += ins.Cost.Cost(p, 0, ins.Horizon)
		}
	}
	for j := range ins.Jobs {
		value += ins.Jobs[j].Value
	}
	return &sched.Schedule{Intervals: intervals, Assignment: assign,
		Cost: cost, Value: value, Scheduled: len(ins.Jobs)}, nil
}

// PerJob is the opposite extreme: one unit awake interval per scheduled
// job, paying the wake cost every time.
func PerJob(ins *sched.Instance) (*sched.Schedule, error) {
	assign := matchingAssignment(ins)
	if assign == nil {
		return nil, sched.ErrUnschedulable
	}
	var intervals []sched.Interval
	cost, value := 0.0, 0.0
	for _, s := range assign {
		iv := sched.Interval{Proc: s.Proc, Start: s.Time, End: s.Time + 1}
		intervals = append(intervals, iv)
		cost += ins.Cost.Cost(s.Proc, s.Time, s.Time+1)
	}
	for j := range ins.Jobs {
		value += ins.Jobs[j].Value
	}
	return &sched.Schedule{Intervals: intervals, Assignment: assign,
		Cost: cost, Value: value, Scheduled: len(ins.Jobs)}, nil
}

// MergeGaps schedules via maximum matching, then merges awake intervals on
// each processor whenever the gap between consecutive busy slots is at
// most maxGap — the 1+α-flavored heuristic of Demaine et al. [13] when
// maxGap ≈ α under affine costs.
func MergeGaps(ins *sched.Instance, maxGap int) (*sched.Schedule, error) {
	assign := matchingAssignment(ins)
	if assign == nil {
		return nil, sched.ErrUnschedulable
	}
	byProc := slotsByProc(ins.Procs, assign)
	var intervals []sched.Interval
	cost, value := 0.0, 0.0
	for proc, times := range byProc {
		if len(times) == 0 {
			continue
		}
		start := times[0]
		prev := times[0]
		for _, t := range times[1:] {
			if t-prev-1 > maxGap {
				iv := sched.Interval{Proc: proc, Start: start, End: prev + 1}
				intervals = append(intervals, iv)
				cost += ins.Cost.Cost(proc, iv.Start, iv.End)
				start = t
			}
			prev = t
		}
		iv := sched.Interval{Proc: proc, Start: start, End: prev + 1}
		intervals = append(intervals, iv)
		cost += ins.Cost.Cost(proc, iv.Start, iv.End)
	}
	for j := range ins.Jobs {
		value += ins.Jobs[j].Value
	}
	return &sched.Schedule{Intervals: intervals, Assignment: assign,
		Cost: cost, Value: value, Scheduled: len(ins.Jobs)}, nil
}
