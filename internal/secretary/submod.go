package secretary

import (
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/submodular"
)

// feasibleFunc gates whether an item may join the current selection; it is
// how Algorithm 3 threads matroid constraints through Algorithm 1's
// segment machinery.
type feasibleFunc func(t *bitset.Set, item int) bool

// segmentGreedy is the engine of Algorithm 1 (§3.2.1): split the stream
// into k segments; in each segment run a classical 1/e-rule on the
// *marginal* value f(T ∪ {a}) — clamped below by f(T), the thesis's first
// if-statement, which also makes the non-monotone run non-decreasing — and
// pick the first item clearing the bar and passing the feasibility gate.
func segmentGreedy(f submodular.Function, order []int, k int, feasible feasibleFunc) *bitset.Set {
	t := bitset.New(f.Universe())
	n := len(order)
	if n == 0 || k <= 0 {
		return t
	}
	if k > n {
		k = n
	}
	fT := f.Eval(t)
	l := n / k
	for i := 0; i < k; i++ {
		lo, hi := i*l, (i+1)*l
		if i == k-1 {
			hi = n
		}
		obs := lo + sampleLen(hi-lo)
		// Observation phase: set the bar α.
		alpha := fT // the clamp "if αᵢ < f(Tᵢ₋₁) then αᵢ := f(Tᵢ₋₁)"
		for pos := lo; pos < obs; pos++ {
			item := order[pos]
			if t.Contains(item) || !feasible(t, item) {
				continue
			}
			t.Add(item)
			v := f.Eval(t)
			t.Remove(item)
			if v > alpha {
				alpha = v
			}
		}
		// Selection phase: first item meeting the bar.
		for pos := obs; pos < hi; pos++ {
			item := order[pos]
			if t.Contains(item) || !feasible(t, item) {
				continue
			}
			t.Add(item)
			v := f.Eval(t)
			if v >= alpha && v >= fT {
				fT = v
				break
			}
			t.Remove(item)
		}
	}
	return t
}

// unconstrained admits every item (Algorithm 1's cardinality budget is
// enforced by the segment count itself: at most one pick per segment).
func unconstrained(*bitset.Set, int) bool { return true }

// MonotoneSubmodular is Algorithm 1: the 7e/(1−1/e)-ish competitive
// monotone submodular secretary algorithm (Theorem 3.2.5 gives expected
// value ≥ (1−1/e)/7e of the optimum k-subset).
func MonotoneSubmodular(f submodular.Function, order []int, k int) *bitset.Set {
	return segmentGreedy(f, order, k, unconstrained)
}

// Submodular is Algorithm 2: the 8e²-competitive algorithm for possibly
// non-monotone submodular f (Theorem 3.2.8). It flips a fair coin and runs
// Algorithm 1 on either the first or the second half of the stream.
func Submodular(f submodular.Function, order []int, k int, rng *rand.Rand) *bitset.Set {
	n := len(order)
	half := n / 2
	if rng.Intn(2) == 0 {
		return segmentGreedy(f, order[:half], k, unconstrained)
	}
	return segmentGreedy(f, order[half:], k, unconstrained)
}
