package bipartite

import "repro/internal/bitset"

// HallWitness explains why a maximum matching leaves Y vertices
// unsaturated: it returns a set of Y vertices whose joint neighborhood
// (within the enabled X vertices) is strictly smaller than the set itself
// — a violated Hall condition. The scheduling layer surfaces this as
// "these jobs compete for fewer slots than there are jobs".
//
// It returns (nil, nil) when the matching saturates all of Y.
//
// Construction: from any unmatched y, alternating BFS (Y→X via any edge,
// X→Y via matching edges) reaches a set Z; the Y side of Z exceeds the X
// side by one and all its neighbors lie inside the X side.
func HallWitness(g *Graph, enabled *bitset.Set) (jobs []int, slots []int) {
	_, matchX, matchY := MaxMatching(g, enabled)
	start := -1
	for y, x := range matchY {
		if x == -1 {
			start = y
			break
		}
	}
	if start == -1 {
		return nil, nil
	}
	inY := make([]bool, g.ny)
	inX := make([]bool, g.nx)
	queueY := []int32{int32(start)}
	inY[start] = true
	for len(queueY) > 0 {
		y := queueY[0]
		queueY = queueY[1:]
		for _, x := range g.adjY[y] {
			if !enabledAll(enabled, int(x)) || inX[x] {
				continue
			}
			inX[x] = true
			// x is matched — otherwise an augmenting path existed and the
			// matching was not maximum. Follow its matching edge back.
			if yy := matchX[x]; yy >= 0 && !inY[yy] {
				inY[yy] = true
				queueY = append(queueY, yy)
			}
		}
	}
	for y, in := range inY {
		if in {
			jobs = append(jobs, y)
		}
	}
	for x, in := range inX {
		if in {
			slots = append(slots, x)
		}
	}
	return jobs, slots
}
