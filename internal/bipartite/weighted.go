package bipartite

import (
	"sort"

	"repro/internal/bitset"
)

// WeightedOrder returns Y indices sorted by descending weight (ties by
// index for determinism). Precompute it once per instance and reuse it
// across WeightedValue queries.
func WeightedOrder(wy []float64) []int {
	order := make([]int, len(wy))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if wy[order[a]] != wy[order[b]] {
			return wy[order[a]] > wy[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// WeightedValue computes the maximum total Y-weight of a matching that
// saturates only enabled X vertices (Lemma 2.3.2's F). order must be a
// descending-weight permutation of Y (see WeightedOrder); wy must be
// non-negative.
//
// Correctness: the family of Y sets saturable within the enabled slots is a
// transversal matroid, so the descending-weight greedy — try to add each
// job via an augmenting path, keeping all previously saturated jobs
// saturated — returns a maximum-weight independent set.
func WeightedValue(g *Graph, wy []float64, order []int, enabled *bitset.Set) (float64, []int32, []int32) {
	matchX := make([]int32, g.nx)
	matchY := make([]int32, g.ny)
	for i := range matchX {
		matchX[i] = -1
	}
	for i := range matchY {
		matchY[i] = -1
	}
	visited := make([]int32, g.nx)
	stamp := int32(0)

	var try func(y int32) bool
	try = func(y int32) bool {
		for _, x := range g.adjY[y] {
			if !enabledAll(enabled, int(x)) || visited[x] == stamp {
				continue
			}
			visited[x] = stamp
			if matchX[x] == -1 || try(matchX[x]) {
				matchX[x] = y
				matchY[y] = x
				return true
			}
		}
		return false
	}

	total := 0.0
	for _, y := range order {
		if wy[y] <= 0 {
			continue // zero-value jobs never help the objective
		}
		stamp++
		if try(int32(y)) {
			total += wy[y]
		}
	}
	return total, matchX, matchY
}

// WeightedGain returns the increase in WeightedValue from enabling extra
// on top of enabled, recomputing from scratch. base must equal the value
// for enabled alone.
func WeightedGain(g *Graph, wy []float64, order []int, enabled *bitset.Set, extra []int, base float64) float64 {
	union := enabled.Clone()
	for _, x := range extra {
		union.Add(x)
	}
	v, _, _ := WeightedValue(g, wy, order, union)
	return v - base
}
