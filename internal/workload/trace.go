package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/power"
	"repro/internal/sched"
)

// ArrivalEvent is one step of an online trace: at slot At, Jobs reveal
// themselves to the scheduler. Every job's allowed slots lie at or after
// At — an arrival cannot demand the past.
type ArrivalEvent struct {
	At   int
	Jobs []sched.Job
}

// ArrivalTrace is an online scheduling workload: instance dimensions, a
// cost model, and a time-ordered sequence of arrival events. Traces built
// by the generators in this file are feasible at every prefix: each job
// carries a planted anchor slot distinct from every other job's, so a
// perfect assignment exists no matter where the trace is truncated.
type ArrivalTrace struct {
	Procs   int
	Horizon int
	Cost    power.CostModel
	Events  []ArrivalEvent
}

// Jobs returns the total number of jobs across all events.
func (tr *ArrivalTrace) Jobs() int {
	n := 0
	for _, ev := range tr.Events {
		n += len(ev.Jobs)
	}
	return n
}

// InstancePrefix builds the offline instance revealed by the first k
// events — jobs in arrival order, exactly as a session fed by the trace
// would hold them.
func (tr *ArrivalTrace) InstancePrefix(k int) *sched.Instance {
	ins := &sched.Instance{Procs: tr.Procs, Horizon: tr.Horizon, Cost: tr.Cost}
	for _, ev := range tr.Events[:k] {
		ins.Jobs = append(ins.Jobs, ev.Jobs...)
	}
	return ins
}

// FinalInstance is the clairvoyant instance: every job of the trace.
func (tr *ArrivalTrace) FinalInstance() *sched.Instance {
	return tr.InstancePrefix(len(tr.Events))
}

// Validate checks the trace's structural invariants: events strictly
// increasing in At within the horizon, at least one job per event, and
// every allowed slot inside the instance and not before its arrival.
func (tr *ArrivalTrace) Validate() error {
	if tr.Procs <= 0 || tr.Horizon <= 0 {
		return fmt.Errorf("workload: trace dimensions %d procs × %d horizon", tr.Procs, tr.Horizon)
	}
	prev := -1
	for i, ev := range tr.Events {
		if ev.At <= prev || ev.At >= tr.Horizon {
			return fmt.Errorf("workload: event %d at %d (previous %d, horizon %d)", i, ev.At, prev, tr.Horizon)
		}
		prev = ev.At
		if len(ev.Jobs) == 0 {
			return fmt.Errorf("workload: event %d has no jobs", i)
		}
		for j, job := range ev.Jobs {
			if len(job.Allowed) == 0 {
				return fmt.Errorf("workload: event %d job %d has no allowed slots", i, j)
			}
			for _, s := range job.Allowed {
				if s.Proc < 0 || s.Proc >= tr.Procs || s.Time < ev.At || s.Time >= tr.Horizon {
					return fmt.Errorf("workload: event %d job %d slot %+v outside [at=%d, horizon=%d)",
						i, j, s, ev.At, tr.Horizon)
				}
			}
		}
	}
	return nil
}

// TraceParams controls the arrival-trace generators.
type TraceParams struct {
	Procs   int
	Horizon int
	Jobs    int
	// Window bounds each job's half-window around its planted anchor
	// slot (0 = anchor-only jobs). Windows are clipped to the arrival
	// time and the horizon.
	Window int
	// Cost defaults to power.Affine{Alpha: 4, Rate: 1}.
	Cost power.CostModel
}

func (p TraceParams) withDefaults() TraceParams {
	if p.Cost == nil {
		p.Cost = power.Affine{Alpha: 4, Rate: 1}
	}
	return p
}

// CheckParams validates trace-generator parameters, returning the error
// the generators panic with. Callers turning user input into params (the
// simulate CLI) check here first for a clean error instead of a crash.
func CheckParams(p TraceParams) error {
	switch {
	case p.Procs <= 0 || p.Horizon <= 0 || p.Jobs <= 0:
		return fmt.Errorf("workload: trace params %d procs × %d horizon × %d jobs, want all > 0",
			p.Procs, p.Horizon, p.Jobs)
	case p.Window < 0:
		return fmt.Errorf("workload: trace Window = %d, want >= 0", p.Window)
	case p.Jobs > p.Procs*(p.Horizon-arrivalCap(p.Horizon)):
		// Feasibility cap: arrivals are confined to [0, arrivalCap), so
		// every arrival sees at least Procs × (Horizon − arrivalCap)
		// slots at or after it — enough distinct anchors for all jobs
		// even if every earlier job anchored in that same tail. A looser
		// cap can strand a late burst with no free future slot.
		return fmt.Errorf("workload: %d jobs exceed the %d anchor slots guaranteed after the last arrival (%d procs × horizon %d)",
			p.Jobs, p.Procs*(p.Horizon-arrivalCap(p.Horizon)), p.Procs, p.Horizon)
	}
	return nil
}

func (p TraceParams) check() {
	if err := CheckParams(p); err != nil {
		panic(err.Error())
	}
}

// plantTrace turns sorted arrival times into a feasible trace: each job
// claims a distinct free anchor (processor, slot) at or after its
// arrival, and its window spans up to ±width slots around the anchor on
// the same processor (clipped to [arrival, horizon)). The planted anchors
// form a system of distinct representatives, so every prefix instance
// admits a perfect assignment.
func plantTrace(rng *rand.Rand, p TraceParams, arrivals []int, width func(i int) int) *ArrivalTrace {
	p = p.withDefaults()
	p.check()
	sort.Ints(arrivals)
	used := make([][]bool, p.Procs)
	for i := range used {
		used[i] = make([]bool, p.Horizon)
	}
	tr := &ArrivalTrace{Procs: p.Procs, Horizon: p.Horizon, Cost: p.Cost}
	for i, at := range arrivals {
		if at >= p.Horizon {
			at = p.Horizon - 1
		}
		if at < 0 {
			at = 0
		}
		proc, slot := pickAnchor(rng, used, at)
		used[proc][slot] = true
		w := width(i)
		lo := max(at, slot-w)
		hi := min(p.Horizon, slot+w+1)
		job := sched.Job{Value: 1}
		for t := lo; t < hi; t++ {
			job.Allowed = append(job.Allowed, sched.SlotKey{Proc: proc, Time: t})
		}
		if n := len(tr.Events); n > 0 && tr.Events[n-1].At == at {
			tr.Events[n-1].Jobs = append(tr.Events[n-1].Jobs, job)
		} else {
			tr.Events = append(tr.Events, ArrivalEvent{At: at, Jobs: []sched.Job{job}})
		}
	}
	return tr
}

// pickAnchor finds a free (processor, slot) with slot >= at: a few random
// samples, then a deterministic scan. CheckParams guarantees a free slot
// exists: arrivals stay below arrivalCap, so every arrival sees at least
// Procs × (Horizon − arrivalCap) slots at or after it, and job count is
// capped by exactly that number.
func pickAnchor(rng *rand.Rand, used [][]bool, at int) (proc, slot int) {
	procs, horizon := len(used), len(used[0])
	span := horizon - at
	for try := 0; try < 16; try++ {
		p, s := rng.Intn(procs), at+rng.Intn(span)
		if !used[p][s] {
			return p, s
		}
	}
	off := rng.Intn(span)
	for d := 0; d < span; d++ {
		s := at + (off+d)%span
		for p := 0; p < procs; p++ {
			if !used[p][s] {
				return p, s
			}
		}
	}
	// Unreachable: CheckParams bounds Jobs by the free slots guaranteed
	// at or after the latest possible arrival.
	panic(fmt.Sprintf("workload: no free slot at or after %d — feasibility cap violated", at))
}

// arrivalCap keeps arrival times in the first ¾ of the horizon so late
// arrivals still find free future anchors.
func arrivalCap(horizon int) int {
	c := 3 * horizon / 4
	if c < 1 {
		c = 1
	}
	return c
}

// PoissonBurstTrace generates arrivals in bursts at exponentially spaced
// event times: memoryless gaps, 1–3 jobs per burst. The classic "traffic
// comes in clumps" regime for rolling-horizon re-solving.
func PoissonBurstTrace(rng *rand.Rand, p TraceParams) *ArrivalTrace {
	p.check()
	last := arrivalCap(p.Horizon)
	// Expected bursts ≈ Jobs/2, spread over the arrival window.
	meanGap := float64(last) / (float64(p.Jobs)/2 + 1)
	arrivals := make([]int, 0, p.Jobs)
	t := 0.0
	for len(arrivals) < p.Jobs {
		at := int(t)
		if at >= last {
			at = last - 1
		}
		burst := 1 + rng.Intn(3)
		for b := 0; b < burst && len(arrivals) < p.Jobs; b++ {
			arrivals = append(arrivals, at)
		}
		t += rng.ExpFloat64() * meanGap
		if t < float64(at)+1 {
			t = float64(at) + 1
		}
	}
	return plantTrace(rng, p, arrivals, func(int) int { return p.Window })
}

// DiurnalTrace draws each job's arrival from a two-peak daily intensity
// curve (the MarketTrace shape): quiet nights, morning and evening rush.
func DiurnalTrace(rng *rand.Rand, p TraceParams) *ArrivalTrace {
	p.check()
	last := arrivalCap(p.Horizon)
	weights := make([]float64, last)
	total := 0.0
	for t := range weights {
		x := float64(t) / float64(last)
		morning := 6 * math.Exp(-40*(x-0.35)*(x-0.35))
		evening := 9 * math.Exp(-30*(x-0.8)*(x-0.8))
		weights[t] = 1 + morning + evening
		total += weights[t]
	}
	arrivals := make([]int, p.Jobs)
	for i := range arrivals {
		r := rng.Float64() * total
		for t, w := range weights {
			r -= w
			if r <= 0 || t == last-1 {
				arrivals[i] = t
				break
			}
		}
	}
	return plantTrace(rng, p, arrivals, func(int) int { return p.Window })
}

// FrontLoadedTrace is the adversarial regime: 60% of the jobs land at
// slot 0 with generous windows (the engine commits early, cheaply-looking
// intervals), then single-slot stragglers trickle in and force awake time
// exactly where the committed plan left gaps.
func FrontLoadedTrace(rng *rand.Rand, p TraceParams) *ArrivalTrace {
	p.check()
	last := arrivalCap(p.Horizon)
	front := p.Jobs * 3 / 5
	if front < 1 {
		front = 1
	}
	arrivals := make([]int, p.Jobs)
	for i := front; i < p.Jobs; i++ {
		arrivals[i] = 1 + rng.Intn(last)
		if arrivals[i] >= last {
			arrivals[i] = last - 1
		}
	}
	wide := 2*p.Window + 1
	return plantTrace(rng, p, arrivals, func(i int) int {
		if i < front {
			return wide
		}
		return 0 // stragglers are anchor-only: no slack to hide in
	})
}
