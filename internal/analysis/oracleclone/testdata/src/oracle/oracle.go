// Fixture: incremental-oracle types (Gain+Commit+Clone method set) with
// shallow and deep Clone implementations. The Blocked type reconstructs
// the PR 4 session bug: the blocked-list [][]int shallow-copied into the
// replica, so a Block() on one session reached into every clone.
package oracle

// Blocked is the PR 4 reconstruction: a matching oracle holding
// per-machine blocked lists that Clone aliases instead of copying.
type Blocked struct {
	weights [][]float64 //powersched:clone-shared immutable problem data, never mutated after construction
	blocked [][]int
	chosen  map[int]bool
	total   float64
}

func (o *Blocked) Gain(j int) float64 { return o.weights[j][0] }
func (o *Blocked) Commit(j int)       { o.chosen[j] = true }

func (o *Blocked) Clone() *Blocked {
	return &Blocked{
		weights: o.weights,
		blocked: o.blocked, // want `Blocked.Clone\(\) shallow-copies reference-typed field "blocked"`
		chosen:  o.chosen,  // want `Blocked.Clone\(\) shallow-copies reference-typed field "chosen"`
		total:   o.total,
	}
}

// Deep does it right: reference fields rebuilt, value fields copied.
type Deep struct {
	blocked [][]int
	chosen  map[int]bool
	total   float64
}

func (o *Deep) Gain(j int) float64 { return float64(j) }
func (o *Deep) Commit(j int)       { o.chosen[j] = true }

func (o *Deep) Clone() *Deep {
	blocked := make([][]int, len(o.blocked))
	for i, b := range o.blocked {
		blocked[i] = append([]int(nil), b...)
	}
	chosen := make(map[int]bool, len(o.chosen))
	for k, v := range o.chosen {
		chosen[k] = v
	}
	return &Deep{blocked: blocked, chosen: chosen, total: o.total}
}

// Starred clones via a whole-struct copy: the aliased map is flagged at
// the copy, the scratch slice is excused because the body rebuilds it,
// and the annotated problem pointer is excused by declaration.
type Starred struct {
	problem *[]float64 //powersched:clone-shared frozen instance data shared across replicas
	chosen  map[int]bool
	scratch []float64
	total   float64
}

func (o *Starred) Gain(j int) float64 { return (*o.problem)[j] }
func (o *Starred) Commit(j int)       { o.chosen[j] = true }

func (o *Starred) Clone() *Starred {
	c := *o // want `Starred.Clone\(\) shallow-copies reference-typed field "chosen"`
	c.scratch = make([]float64, len(o.scratch))
	return &c
}

// Assigned clones field by field: the aliased assignment is flagged,
// the rebuilt one is not.
type Assigned struct {
	chosen  map[int]bool
	scratch []float64
}

func (o *Assigned) Gain(j int) float64 { return float64(len(o.scratch)) }
func (o *Assigned) Commit(j int)       { o.chosen[j] = true }

func (o *Assigned) Clone() *Assigned {
	c := new(Assigned)
	c.chosen = o.chosen // want `Assigned.Clone\(\) shallow-copies reference-typed field "chosen"`
	c.scratch = append([]float64(nil), o.scratch...)
	return c
}

// NotAnOracle has Clone but no Gain/Commit: out of scope, its shallow
// copy is some other contract's business.
type NotAnOracle struct {
	data []int
}

func (n *NotAnOracle) Clone() *NotAnOracle {
	return &NotAnOracle{data: n.data}
}
