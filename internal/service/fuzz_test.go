package service

import (
	"encoding/json"
	"testing"
)

// fuzzSpecTooBig bounds the instances a fuzz iteration will actually
// build: the codec must survive any input, but building million-slot
// models per iteration would make the fuzzer useless.
func fuzzSpecTooBig(spec InstanceSpec) bool {
	if spec.Procs > 8 || spec.Horizon > 64 || len(spec.Jobs) > 32 {
		return true
	}
	slots := 0
	for _, j := range spec.Jobs {
		slots += len(j.Allowed)
	}
	return slots > 256
}

// FuzzWireCodec round-trips the service wire spec: any JSON the decoder
// accepts must build without panicking, and the canonical re-encoding
// must be a fixed point — decode(marshal(spec)) digests identically to
// spec, else the result cache and the per-worker model reuse would key
// the same instance two ways. Covers every cost-model variant including
// the scenario-matrix fields (wakes/speeds/exp, wake/idle, composite
// blocked masks). Run long with:
//
//	go test -run '^$' -fuzz FuzzWireCodec ./internal/service
func FuzzWireCodec(f *testing.F) {
	f.Add([]byte(`{"procs":1,"horizon":4,"cost":{"model":"affine","alpha":2,"rate":1},` +
		`"jobs":[{"allowed":[{"proc":0,"time":1},{"proc":0,"time":2}]}]}`))
	f.Add([]byte(`{"procs":2,"horizon":3,"cost":{"model":"speedscaled","wakes":[2,3],"speeds":[1,2],"exp":3},` +
		`"jobs":[{"value":2,"allowed":[{"proc":1,"time":0}]}],"mode":"prize","z":1.5}`))
	f.Add([]byte(`{"procs":1,"horizon":3,"cost":{"model":"sleepstate","wake":10,"rate":2,"idle":1},` +
		`"jobs":[{"allowed":[{"proc":0,"time":2}]}],"workers":4}`))
	f.Add([]byte(`{"procs":2,"horizon":4,"cost":{"model":"composite","wakes":[1,1],"speeds":[1,2],"exp":2,` +
		`"price":[1,2,3,4],"blocked":[{"proc":0,"time":2}]},"jobs":[{"allowed":[{"proc":1,"time":1}]}]}`))
	f.Add([]byte(`{"procs":1,"horizon":4,"cost":{"model":"unavailable","base":{"model":"timeofuse",` +
		`"alphas":[1],"rates":[1],"price":[1,1,1,1]},"blocked":[{"proc":0,"time":0}]},` +
		`"jobs":[{"allowed":[{"proc":0,"time":3}]}],"mode":"prize-exact","z":1}`))
	f.Add([]byte(`{"procs":-3,"horizon":-1,"cost":{"model":"superlinear","exp":-0.5},"jobs":[{}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			return
		}
		var spec InstanceSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return // not a spec; nothing to check
		}
		if fuzzSpecTooBig(spec) {
			return
		}
		req, err := BuildRequest(spec) // must not panic on anything decodable
		if err != nil {
			return // rejected inputs are fine; rejecting is the codec's job
		}
		digest := InstanceDigest(spec)
		if req.InstanceKey != digest {
			t.Fatalf("BuildRequest key %q != InstanceDigest %q", req.InstanceKey, digest)
		}
		canon, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("re-marshal of accepted spec failed: %v", err)
		}
		var spec2 InstanceSpec
		if err := json.Unmarshal(canon, &spec2); err != nil {
			t.Fatalf("canonical encoding does not decode: %v", err)
		}
		if d2 := InstanceDigest(spec2); d2 != digest {
			t.Fatalf("digest not a fixed point: %q -> %q\ncanonical: %s", digest, d2, canon)
		}
		if _, err := BuildRequest(spec2); err != nil {
			t.Fatalf("canonical re-decode rejected: %v\ncanonical: %s", err, canon)
		}
	})
}
