// Package errsentinel enforces the sentinel error contract on the
// layers whose callers dispatch on error identity:
//
//   - internal/service durability paths (journal*, snapshot*, durab*
//     files): errors must wrap ErrDurability or ErrSnapshotCorrupt via
//     %w, so the HTTP surface can map ErrDurability to 503 +
//     Retry-After and recovery can quarantine on ErrSnapshotCorrupt;
//   - internal/cluster routing and failover paths (route*, health*,
//     failover* files): errors must wrap ErrBackendUnavailable or
//     ErrRetryBudgetExhausted via %w, so the router's HTTP surface can
//     map them to 503/429 + Retry-After and the chaos matrix can
//     assert the degradation contract with errors.Is.
//
// In the scoped files, non-test:
//
//   - fmt.Errorf with a literal format string lacking %w is flagged: it
//     severs the error chain, and errors.Is at the HTTP boundary
//     silently stops matching;
//   - errors.New inside a function body is flagged: an ad-hoc error on
//     a contract path belongs under a sentinel. Package-level
//     errors.New remains the way sentinels themselves are declared.
package errsentinel

import (
	"go/ast"
	"go/token"
	"path"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the errsentinel check.
var Analyzer = &analysis.Analyzer{
	Name: "errsentinel",
	Doc:  "contract-path errors in internal/service and internal/cluster must wrap the exported sentinels via %w",
	Run:  run,
}

// scope names the files a package's sentinel contract covers and the
// sentinels its diagnostics should steer authors toward.
type scope struct {
	filePrefixes []string
	sentinels    string
}

// scopes maps a package's base name to its sentinel contract.
var scopes = map[string]scope{
	"service": {
		filePrefixes: []string{"journal", "snapshot", "durab"},
		sentinels:    "ErrDurability, ErrSnapshotCorrupt",
	},
	"cluster": {
		filePrefixes: []string{"route", "health", "failover"},
		sentinels:    "ErrBackendUnavailable, ErrRetryBudgetExhausted",
	},
}

func (s scope) covers(name string) bool {
	base := filepath.Base(name)
	for _, p := range s.filePrefixes {
		if strings.HasPrefix(base, p) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	sc, ok := scopes[path.Base(pass.Pkg.Path())]
	if !ok {
		return nil
	}
	for _, f := range pass.Files {
		if !sc.covers(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		// Only function bodies: package-level var blocks are where the
		// sentinels themselves are declared with errors.New.
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				pkgPath, name, ok := analysis.PkgFuncCall(pass.TypesInfo, call)
				if !ok {
					return true
				}
				switch {
				case pkgPath == "errors" && name == "New":
					pass.Reportf(call.Pos(),
						"naked errors.New on a contract path: return or wrap an exported sentinel (%s) so callers can errors.Is", sc.sentinels)
				case pkgPath == "fmt" && name == "Errorf":
					if lit := formatLiteral(call); lit != "" && !strings.Contains(lit, "%w") {
						pass.Reportf(call.Pos(),
							"fmt.Errorf without %%w on a contract path severs the sentinel chain: wrap %s (or the underlying error) with %%w", sc.sentinels)
					}
				}
				return true
			})
		}
	}
	return nil
}

// formatLiteral returns the call's first argument if it is a string
// literal (possibly a concatenation of literals), else "".
func formatLiteral(call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return ""
	}
	return literalString(call.Args[0])
}

func literalString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.BasicLit:
		if v.Kind == token.STRING {
			return v.Value
		}
	case *ast.BinaryExpr:
		if v.Op == token.ADD {
			return literalString(v.X) + literalString(v.Y)
		}
	case *ast.ParenExpr:
		return literalString(v.X)
	}
	return ""
}
