package power

import (
	"math"
	"testing"
)

func TestAffine(t *testing.T) {
	m := Affine{Alpha: 3, Rate: 2}
	if got := m.Cost(0, 1, 4); got != 9 {
		t.Fatalf("Cost = %v, want 9", got)
	}
	if got := m.Cost(5, 2, 2); got != 3 {
		t.Fatalf("empty interval cost = %v, want alpha 3", got)
	}
}

func TestPerProcessor(t *testing.T) {
	m := NewPerProcessor([]float64{1, 10}, []float64{1, 2})
	if got := m.Cost(0, 0, 3); got != 4 {
		t.Fatalf("proc0 = %v, want 4", got)
	}
	if got := m.Cost(1, 0, 3); got != 16 {
		t.Fatalf("proc1 = %v, want 16", got)
	}
}

func TestPerProcessorPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPerProcessor([]float64{1}, []float64{1, 2})
}

func TestTimeOfUse(t *testing.T) {
	m := NewTimeOfUse([]float64{2}, []float64{1}, []float64{5, 1, 1, 5})
	if got := m.Cost(0, 1, 3); got != 4 {
		t.Fatalf("off-peak = %v, want 4", got)
	}
	if got := m.Cost(0, 0, 4); got != 14 {
		t.Fatalf("full day = %v, want 14", got)
	}
	if got := m.Cost(0, 2, 6); !math.IsInf(got, 1) {
		t.Fatalf("out-of-horizon = %v, want +Inf", got)
	}
	if m.Horizon() != 4 {
		t.Fatalf("Horizon = %d", m.Horizon())
	}
}

func TestTimeOfUsePeakAvoidanceIncentive(t *testing.T) {
	// Two short intervals skipping the peak must beat one long interval
	// when alpha is small — the behaviour §1 item 2 motivates.
	m := NewTimeOfUse([]float64{0.5}, []float64{1}, []float64{1, 1, 9, 1, 1})
	long := m.Cost(0, 0, 5)
	split := m.Cost(0, 0, 2) + m.Cost(0, 3, 5)
	if split >= long {
		t.Fatalf("split %v should beat long %v", split, long)
	}
}

func TestSuperlinear(t *testing.T) {
	m := Superlinear{Alpha: 1, Rate: 1, Fan: 0.5, Exp: 2}
	if got := m.Cost(0, 0, 2); got != 1+2+2 {
		t.Fatalf("Cost = %v, want 5", got)
	}
	// Superlinearity: splitting a long interval saves fan cost.
	long := m.Cost(0, 0, 10)
	split := m.Cost(0, 0, 5) + m.Cost(0, 5, 10)
	if split >= long {
		t.Fatalf("split %v should beat long %v under superlinear fan", split, long)
	}
}

func TestUnavailable(t *testing.T) {
	u := NewUnavailable(Affine{Alpha: 1, Rate: 1}, 10)
	u.Block(0, 5)
	if got := u.Cost(0, 0, 5); got != 6 {
		t.Fatalf("non-overlapping = %v, want 6", got)
	}
	if got := u.Cost(0, 3, 7); !math.IsInf(got, 1) {
		t.Fatalf("overlapping = %v, want +Inf", got)
	}
	if got := u.Cost(1, 3, 7); got != 5 {
		t.Fatalf("other proc = %v, want 5", got)
	}
}

func TestFuncAdapter(t *testing.T) {
	m := Func(func(proc, start, end int) float64 { return float64(proc) + float64(end-start) })
	if got := m.Cost(2, 0, 3); got != 5 {
		t.Fatalf("Func = %v, want 5", got)
	}
}
