// Package oracleclone enforces the oracle-replica contract: a concrete
// incremental-oracle Clone() must return an independent replica —
// deep-copying every mutable slice/map/pointer field — sharing only
// data that is declared immutable. A shallow-copied reference field
// aliases the original's mutable state across replicas, and because
// replicas probe concurrently and replay commits independently, the
// corruption surfaces as rare, worker-count-dependent divergence: the
// PR 4 blocked-list corruption and the PR 5 Composite aliasing both
// came from exactly this bug class.
//
// A type is treated as an incremental oracle when it declares Gain,
// Commit, and Clone methods (the shape of submodular.Incremental,
// matched structurally so the check also covers future oracle
// interfaces with side constraints). Inside its Clone body the analyzer
// flags reference-typed fields (slice, map, pointer, chan, interface)
// copied directly off the receiver:
//
//	&T{spans: o.spans}   // composite literal, keyed or positional
//	c.spans = o.spans    // field-to-field assignment
//	c := *o              // whole-struct copy (minus fields reassigned later)
//
// Copies routed through a call (o.spans.Clone(), append(nil, ...),
// make+copy) are not flagged. A field that is genuinely safe to share
// declares it where reviewers look, on the field itself:
//
//	weights []float64 //powersched:clone-shared immutable problem data
package oracleclone

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the oracleclone check.
var Analyzer = &analysis.Analyzer{
	Name: "oracleclone",
	Doc:  "incremental-oracle Clone() must deep-copy mutable reference fields",
	Run:  run,
}

// isRefType reports whether copying a value of type t copies a
// reference to shared mutable state rather than the state itself.
func isRefType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// oracle gathers what the analyzer needs about one incremental-oracle
// type: its struct shape, its Clone body, and the field declarations
// (for annotations).
type oracle struct {
	named  *types.Named
	strct  *types.Struct
	clone  *ast.FuncDecl
	file   *ast.File
	fields map[string]*ast.Field
}

func run(pass *analysis.Pass) error {
	// Index method declarations per named receiver type.
	methods := map[*types.TypeName]map[string]*ast.FuncDecl{}
	methodFile := map[*ast.FuncDecl]*ast.File{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := obj.Type().(*types.Signature).Recv()
			if recv == nil {
				continue
			}
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				continue
			}
			tn := named.Obj()
			if methods[tn] == nil {
				methods[tn] = map[string]*ast.FuncDecl{}
			}
			methods[tn][fn.Name.Name] = fn
			methodFile[fn] = f
		}
	}

	for tn, ms := range methods {
		clone := ms["Clone"]
		if clone == nil || ms["Gain"] == nil || ms["Commit"] == nil {
			continue // not an incremental oracle
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		strct, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		o := &oracle{
			named:  named,
			strct:  strct,
			clone:  clone,
			file:   methodFile[clone],
			fields: fieldDecls(pass, tn),
		}
		checkClone(pass, o)
	}
	return nil
}

// fieldDecls maps field names of the type's struct declaration to their
// AST nodes, so annotations on the declaration are visible.
func fieldDecls(pass *analysis.Pass, tn *types.TypeName) map[string]*ast.Field {
	out := map[string]*ast.Field{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || pass.TypesInfo.Defs[ts.Name] != tn {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						out[name.Name] = field
					}
				}
			}
		}
	}
	return out
}

// sharedAnnotated reports whether the field declaration carries the
// //powersched:clone-shared <reason> annotation (with a reason).
func (o *oracle) sharedAnnotated(name string) bool {
	field := o.fields[name]
	if field == nil {
		return false
	}
	if reason, ok := analysis.CommentHasMarker(field.Doc, "clone-shared"); ok && reason != "" {
		return true
	}
	if reason, ok := analysis.CommentHasMarker(field.Comment, "clone-shared"); ok && reason != "" {
		return true
	}
	return false
}

// checkClone inspects one Clone body for shallow reference copies.
func checkClone(pass *analysis.Pass, o *oracle) {
	recvObj := receiverObject(pass, o.clone)
	if recvObj == nil {
		return // unnamed receiver: the body cannot read receiver fields
	}

	// Fields of the clone overwritten anywhere in the body ("c := *o"
	// followed by "c.scratch = make(...)"), keyed by target object.
	overwritten := map[types.Object]map[string]bool{}
	ast.Inspect(o.clone.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			base, ok := sel.X.(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Uses[base]
			if obj == nil || obj == recvObj {
				continue
			}
			if overwritten[obj] == nil {
				overwritten[obj] = map[string]bool{}
			}
			overwritten[obj][sel.Sel.Name] = true
		}
		return true
	})

	report := func(pos ast.Node, fieldName string) {
		ft := fieldType(o.strct, fieldName)
		pass.Reportf(pos.Pos(),
			"%s.Clone() shallow-copies reference-typed field %q (%s): replicas alias mutable state (the PR 4 blocked-list / PR 5 Composite bug class) — deep-copy it, or annotate the field //powersched:clone-shared <reason> if sharing is sound",
			o.named.Obj().Name(), fieldName, ft)
	}

	ast.Inspect(o.clone.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[node]
			if !ok || !types.Identical(tv.Type, o.named) {
				return true
			}
			for i, elt := range node.Elts {
				fieldName, value := litEntry(o.strct, i, elt)
				if fieldName == "" || value == nil {
					continue
				}
				if !selectorOn(pass, value, recvObj) {
					continue
				}
				if !isRefType(fieldType(o.strct, fieldName)) || o.sharedAnnotated(fieldName) {
					continue
				}
				report(value, fieldName)
			}
		case *ast.AssignStmt:
			for i := range node.Lhs {
				if i >= len(node.Rhs) {
					break
				}
				checkAssign(pass, o, recvObj, overwritten, node, node.Lhs[i], node.Rhs[i], report)
			}
		}
		return true
	})
}

// checkAssign handles both field-to-field assignment and whole-struct
// star copies.
func checkAssign(pass *analysis.Pass, o *oracle, recvObj types.Object,
	overwritten map[types.Object]map[string]bool, stmt *ast.AssignStmt,
	lhs, rhs ast.Expr, report func(ast.Node, string)) {

	// c.f = o.g — a reference field copied straight off the receiver.
	if sel, ok := lhs.(*ast.SelectorExpr); ok {
		base, ok := sel.X.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[base] == recvObj {
			return
		}
		baseType := pass.TypesInfo.TypeOf(base)
		if p, isPtr := baseType.(*types.Pointer); isPtr {
			baseType = p.Elem()
		}
		if baseType == nil || !types.Identical(baseType, o.named) {
			return
		}
		if !selectorOn(pass, rhs, recvObj) {
			return
		}
		name := sel.Sel.Name
		if isRefType(fieldType(o.strct, name)) && !o.sharedAnnotated(name) {
			report(rhs, name)
		}
		return
	}

	// c := *o or *c = *o — every reference field is aliased at once,
	// except those the body overwrites afterwards.
	star, ok := rhs.(*ast.StarExpr)
	if !ok {
		return
	}
	src, ok := star.X.(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[src] != recvObj {
		return
	}
	target := assignTarget(pass, lhs)
	for i := 0; i < o.strct.NumFields(); i++ {
		f := o.strct.Field(i)
		if !isRefType(f.Type()) || o.sharedAnnotated(f.Name()) {
			continue
		}
		if target != nil && overwritten[target][f.Name()] {
			continue
		}
		report(stmt, f.Name())
	}
}

// assignTarget resolves the object a star-copy writes into (c in
// "c := *o" or "*c = *o").
func assignTarget(pass *analysis.Pass, lhs ast.Expr) types.Object {
	switch v := lhs.(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Defs[v]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Uses[v]
	case *ast.StarExpr:
		if id, ok := v.X.(*ast.Ident); ok {
			return pass.TypesInfo.Uses[id]
		}
	}
	return nil
}

// litEntry resolves one composite-literal element to (fieldName, value).
func litEntry(strct *types.Struct, index int, elt ast.Expr) (string, ast.Expr) {
	if kv, ok := elt.(*ast.KeyValueExpr); ok {
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			return "", nil
		}
		return key.Name, kv.Value
	}
	if index < strct.NumFields() {
		return strct.Field(index).Name(), elt
	}
	return "", nil
}

// selectorOn reports whether e is a bare "recv.field" selector.
func selectorOn(pass *analysis.Pass, e ast.Expr, recvObj types.Object) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	base, ok := sel.X.(*ast.Ident)
	return ok && pass.TypesInfo.Uses[base] == recvObj
}

// fieldType returns the named field's type, or nil if absent.
func fieldType(strct *types.Struct, name string) types.Type {
	for i := 0; i < strct.NumFields(); i++ {
		if strct.Field(i).Name() == name {
			return strct.Field(i).Type()
		}
	}
	return nil
}

// receiverObject returns the object of the Clone receiver identifier.
func receiverObject(pass *analysis.Pass, fn *ast.FuncDecl) types.Object {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fn.Recv.List[0].Names[0]]
}
