// Package suite aggregates the powersched contract analyzers in the
// order diagnostics should be reported. cmd/powerschedlint drives this
// set; adding an analyzer here wires it into standalone runs, the
// go vet -vettool mode, and scripts/lint.sh at once.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/deltashare"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/errsentinel"
	"repro/internal/analysis/faultfsonly"
	"repro/internal/analysis/netfaultonly"
	"repro/internal/analysis/nopaniccost"
	"repro/internal/analysis/oracleclone"
	"repro/internal/analysis/streambound"
)

// Analyzers returns the full contract-linting suite.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		oracleclone.Analyzer,
		deltashare.Analyzer,
		detrand.Analyzer,
		streambound.Analyzer,
		nopaniccost.Analyzer,
		faultfsonly.Analyzer,
		netfaultonly.Analyzer,
		errsentinel.Analyzer,
	}
}
